//! Core identifier, timestamp and dependency-vector types shared by every
//! crate of the causal GGD (Global Garbage Detection) workspace.
//!
//! This crate reproduces the data model of Louboutin & Cahill,
//! *Comprehensive Distributed Garbage Collection by Tracking Causal
//! Dependencies of Relevant Mutator Events* (ICDCS 1997):
//!
//! * [`SiteId`], [`ObjectId`] and [`GlobalAddr`] identify objects scattered
//!   over a partitioned address space (§2 of the paper);
//! * [`EventIndex`] and [`Timestamp`] model the per-vertex, monotonically
//!   increasing numbering of *log-keeping events* (§3.1), including the
//!   paper's `Ē` destruction marker;
//! * [`DependencyVector`] is the sparse direct-dependency / vector-time
//!   representation used by the lazy log-keeping mechanism and by the GGD
//!   engine (§3.2–§3.3), together with the Schwarz & Mattern partial order;
//! * [`CausalOrder`] classifies two vectors as causally related, equal or
//!   concurrent.
//!
//! # Example
//!
//! ```
//! use ggd_types::{DependencyVector, Timestamp, VertexId};
//!
//! let a = VertexId::object(1, 1);
//! let b = VertexId::object(2, 1);
//!
//! let mut earlier = DependencyVector::new();
//! earlier.set(a, Timestamp::created(1));
//!
//! let mut later = earlier.clone();
//! later.set(b, Timestamp::created(1));
//!
//! assert!(earlier.causally_precedes(&later));
//! assert!(!later.causally_precedes(&earlier));
//! ```

mod ids;
mod timestamp;
mod vector;

pub use ids::{ClusterKey, EventId, GlobalAddr, Granularity, ObjectId, SiteId, VertexId};
pub use timestamp::{EventIndex, Timestamp};
pub use vector::{CausalOrder, DependencyVector, VectorEntries};

/// Convenience result alias used by fallible constructors in this crate.
pub type Result<T> = std::result::Result<T, TypeError>;

/// Errors raised by the type layer.
///
/// These are deliberately few: most invariants are enforced statically by
/// the new-types in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TypeError {
    /// An event index of zero was supplied where a strictly positive index
    /// is required (indices start at 1; zero is reserved for "never").
    ZeroEventIndex,
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeError::ZeroEventIndex => write!(f, "event index must be strictly positive"),
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        assert!(!TypeError::ZeroEventIndex.to_string().is_empty());
    }

    #[test]
    fn types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SiteId>();
        assert_send_sync::<ObjectId>();
        assert_send_sync::<GlobalAddr>();
        assert_send_sync::<Timestamp>();
        assert_send_sync::<DependencyVector>();
        assert_send_sync::<TypeError>();
    }
}
