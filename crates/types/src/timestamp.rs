//! Event indices and log-keeping timestamps.
//!
//! Log-keeping events are numbered sequentially at each vertex of the global
//! root graph with a monotonically increasing counter (§3.1 of the paper).
//! An entry of a dependency vector is one of three things:
//!
//! * `0` — no log-keeping message has ever been received from the
//!   corresponding global root ([`Timestamp::Never`]);
//! * a plain index — the timestamp of the latest *edge-creation* event known
//!   from that root ([`Timestamp::Created`]);
//! * `Ē` — the timestamp of the direct remote predecessor of an
//!   *edge-destruction* event, meaning the last log-keeping message received
//!   from that root announced that the edge no longer exists
//!   ([`Timestamp::Destroyed`]).
//!
//! The paper's predicate `A(x)` — "the entry denotes the absence of a live
//! edge" — holds for `0` and `Ē`; it is exposed here as
//! [`Timestamp::is_absent`]. When vector-times are compared for reachability
//! purposes a destroyed entry is treated "as if no edge creation event had
//! ever been sent from this global root" (§3.2), which is what
//! [`Timestamp::live_index`] encodes.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::num::NonZeroU64;

use crate::TypeError;

/// A strictly positive, per-vertex log-keeping event sequence number.
///
/// Index `0` is reserved to mean "no event"; the first event of every vertex
/// has index `1`, matching the paper's `e_{i,1}` notation.
///
/// # Example
///
/// ```
/// use ggd_types::EventIndex;
/// let first = EventIndex::new(1).unwrap();
/// assert_eq!(first.get(), 1);
/// assert_eq!(first.next().get(), 2);
/// assert!(EventIndex::new(0).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventIndex(NonZeroU64);

impl EventIndex {
    /// The first event index assigned at any vertex.
    pub const FIRST: EventIndex = EventIndex(match NonZeroU64::new(1) {
        Some(n) => n,
        None => unreachable!(),
    });

    /// Creates an event index.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::ZeroEventIndex`] when `index` is zero.
    pub fn new(index: u64) -> crate::Result<Self> {
        NonZeroU64::new(index)
            .map(EventIndex)
            .ok_or(TypeError::ZeroEventIndex)
    }

    /// Returns the numeric value of the index.
    pub const fn get(self) -> u64 {
        self.0.get()
    }

    /// Returns the next index in the per-vertex sequence.
    ///
    /// # Panics
    ///
    /// Panics if the counter would overflow `u64`, which cannot happen in
    /// any realistic execution.
    pub fn next(self) -> Self {
        EventIndex(NonZeroU64::new(self.0.get() + 1).expect("event index overflow"))
    }
}

impl fmt::Display for EventIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One entry of a dependency vector: what is known about the latest
/// log-keeping event of a given global root.
///
/// The ordering of timestamps follows the information lattice used by the
/// GGD algorithm: entries are compared by event index first (newer indices
/// supersede older ones), and at equal index a destruction marker supersedes
/// a creation, because `Ē` carries strictly more recent knowledge about the
/// same event counter ("the last message received from this root was an
/// edge-destruction message", §3.1).
///
/// # Example
///
/// ```
/// use ggd_types::Timestamp;
/// let never = Timestamp::Never;
/// let created = Timestamp::created(3);
/// let destroyed = Timestamp::destroyed(3);
/// assert!(never < created);
/// assert!(created < destroyed);
/// assert!(destroyed < Timestamp::created(4));
/// assert!(never.is_absent() && destroyed.is_absent() && !created.is_absent());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Timestamp {
    /// No log-keeping message has ever been received from this root
    /// (the paper's `0`).
    #[default]
    Never,
    /// The latest known log-keeping event of this root, with a live edge
    /// created towards the vector's owner.
    Created(EventIndex),
    /// The paper's `Ē`: the latest known log-keeping event index of this
    /// root, with the additional knowledge that the corresponding edge has
    /// since been destroyed.
    Destroyed(EventIndex),
}

impl Timestamp {
    /// Builds a [`Timestamp::Created`] from a raw index.
    ///
    /// # Panics
    ///
    /// Panics when `index` is zero; use [`Timestamp::Never`] for "no event".
    pub fn created(index: u64) -> Self {
        Timestamp::Created(EventIndex::new(index).expect("creation timestamp must be positive"))
    }

    /// Builds a [`Timestamp::Destroyed`] from a raw index.
    ///
    /// # Panics
    ///
    /// Panics when `index` is zero; use [`Timestamp::Never`] for "no event".
    pub fn destroyed(index: u64) -> Self {
        Timestamp::Destroyed(
            EventIndex::new(index).expect("destruction timestamp must be positive"),
        )
    }

    /// The paper's predicate `A(x)`: true when the entry denotes the absence
    /// of a live inbound edge — either no event was ever received (`0`) or
    /// the last news was an edge destruction (`Ē`).
    pub const fn is_absent(self) -> bool {
        matches!(self, Timestamp::Never | Timestamp::Destroyed(_))
    }

    /// True when the entry denotes a live edge-creation event.
    pub const fn is_live(self) -> bool {
        matches!(self, Timestamp::Created(_))
    }

    /// The raw event index carried by this entry (`0` for [`Timestamp::Never`]).
    pub const fn index(self) -> u64 {
        match self {
            Timestamp::Never => 0,
            Timestamp::Created(i) | Timestamp::Destroyed(i) => i.get(),
        }
    }

    /// The event index counted as contributing a live path: destroyed and
    /// absent entries both report `0`, as mandated by §3.2 ("treated as if no
    /// edge creation event had ever been sent from this global root").
    pub const fn live_index(self) -> u64 {
        match self {
            Timestamp::Created(i) => i.get(),
            Timestamp::Never | Timestamp::Destroyed(_) => 0,
        }
    }

    /// Turns this entry into its destroyed counterpart, preserving the index.
    ///
    /// [`Timestamp::Never`] stays `Never` (there is nothing to destroy).
    pub const fn into_destroyed(self) -> Self {
        match self {
            Timestamp::Never => Timestamp::Never,
            Timestamp::Created(i) | Timestamp::Destroyed(i) => Timestamp::Destroyed(i),
        }
    }

    /// Merges two pieces of knowledge about the same root, keeping the most
    /// recent one (the lattice join used when merging dependency vectors).
    pub fn merged(self, other: Timestamp) -> Timestamp {
        self.max(other)
    }

    /// True when `self` carries strictly newer information than `other`.
    pub fn is_newer_than(self, other: Timestamp) -> bool {
        self > other
    }
}

impl PartialOrd for Timestamp {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Timestamp {
    /// Orders entries by the freshness of the information they carry: by
    /// event index first, and at equal index a destruction marker is newer
    /// than a creation (it reports the subsequent fate of the same edge).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let key = |t: &Timestamp| (t.index(), matches!(t, Timestamp::Destroyed(_)) as u8);
        key(self).cmp(&key(other))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Timestamp::Never => write!(f, "0"),
            Timestamp::Created(i) => write!(f, "{i}"),
            Timestamp::Destroyed(i) => write!(f, "Ē{i}"),
        }
    }
}

impl From<EventIndex> for Timestamp {
    fn from(index: EventIndex) -> Self {
        Timestamp::Created(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_index_basics() {
        assert_eq!(EventIndex::FIRST.get(), 1);
        assert_eq!(EventIndex::new(5).unwrap().get(), 5);
        assert_eq!(EventIndex::new(5).unwrap().next().get(), 6);
        assert_eq!(EventIndex::new(0).unwrap_err(), TypeError::ZeroEventIndex);
        assert_eq!(EventIndex::new(3).unwrap().to_string(), "3");
    }

    #[test]
    fn timestamp_predicates() {
        assert!(Timestamp::Never.is_absent());
        assert!(Timestamp::destroyed(4).is_absent());
        assert!(!Timestamp::created(4).is_absent());
        assert!(Timestamp::created(4).is_live());
        assert!(!Timestamp::destroyed(4).is_live());
        assert!(!Timestamp::Never.is_live());
    }

    #[test]
    fn timestamp_indices() {
        assert_eq!(Timestamp::Never.index(), 0);
        assert_eq!(Timestamp::created(7).index(), 7);
        assert_eq!(Timestamp::destroyed(7).index(), 7);
        assert_eq!(Timestamp::Never.live_index(), 0);
        assert_eq!(Timestamp::created(7).live_index(), 7);
        assert_eq!(Timestamp::destroyed(7).live_index(), 0);
    }

    #[test]
    fn timestamp_ordering_is_by_index_then_destruction() {
        assert!(Timestamp::Never < Timestamp::created(1));
        assert!(Timestamp::created(1) < Timestamp::destroyed(1));
        assert!(Timestamp::destroyed(1) < Timestamp::created(2));
        assert!(Timestamp::created(2) < Timestamp::destroyed(3));
    }

    #[test]
    fn merge_keeps_newest() {
        let a = Timestamp::created(2);
        let b = Timestamp::destroyed(2);
        assert_eq!(a.merged(b), b);
        assert_eq!(b.merged(a), b);
        assert_eq!(Timestamp::Never.merged(a), a);
        assert_eq!(a.merged(Timestamp::created(5)), Timestamp::created(5));
        assert!(b.is_newer_than(a));
        assert!(!a.is_newer_than(b));
    }

    #[test]
    fn into_destroyed_preserves_index() {
        assert_eq!(
            Timestamp::created(9).into_destroyed(),
            Timestamp::destroyed(9)
        );
        assert_eq!(
            Timestamp::destroyed(9).into_destroyed(),
            Timestamp::destroyed(9)
        );
        assert_eq!(Timestamp::Never.into_destroyed(), Timestamp::Never);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Timestamp::Never.to_string(), "0");
        assert_eq!(Timestamp::created(3).to_string(), "3");
        assert_eq!(Timestamp::destroyed(3).to_string(), "Ē3");
    }

    #[test]
    #[should_panic]
    fn created_zero_panics() {
        let _ = Timestamp::created(0);
    }

    #[test]
    fn from_event_index_is_created() {
        let idx = EventIndex::new(2).unwrap();
        assert_eq!(Timestamp::from(idx), Timestamp::created(2));
    }
}
