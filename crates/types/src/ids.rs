//! Identifiers for sites, objects and log-keeping events.
//!
//! A distributed object system partitions its object graph over a number of
//! independent address spaces, called *sites* in the paper (§2). An object is
//! identified globally by the pair ([`SiteId`], [`ObjectId`]) — a
//! [`GlobalAddr`]. Vertices of the *global root graph* are identified by the
//! `GlobalAddr` of the corresponding global root (or, when the clustering
//! granularity of §3.5 is selected, by their site).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::EventIndex;

/// Identifier of a site, i.e. one independent address space of the
/// partitioned object graph (§2 of the paper).
///
/// # Example
///
/// ```
/// use ggd_types::SiteId;
/// let s = SiteId::new(3);
/// assert_eq!(s.index(), 3);
/// assert_eq!(s.to_string(), "s3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SiteId(u32);

impl SiteId {
    /// Creates a new site identifier from its numeric index.
    pub const fn new(index: u32) -> Self {
        SiteId(index)
    }

    /// Returns the numeric index of this site.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for SiteId {
    fn from(index: u32) -> Self {
        SiteId(index)
    }
}

/// Identifier of an object within a single site.
///
/// Object identifiers are only meaningful relative to their site; the
/// globally unique name of an object is its [`GlobalAddr`].
///
/// # Example
///
/// ```
/// use ggd_types::ObjectId;
/// let o = ObjectId::new(42);
/// assert_eq!(o.index(), 42);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ObjectId(u64);

impl ObjectId {
    /// Creates a new object identifier from its numeric index.
    pub const fn new(index: u64) -> Self {
        ObjectId(index)
    }

    /// Returns the numeric index of this object within its site.
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(index: u64) -> Self {
        ObjectId(index)
    }
}

/// Globally unique address of an object: the pair (site, object).
///
/// `GlobalAddr` is the identity used for vertices of the global root graph
/// and as the key space of [`DependencyVector`](crate::DependencyVector)s.
///
/// # Example
///
/// ```
/// use ggd_types::{GlobalAddr, ObjectId, SiteId};
/// let a = GlobalAddr::new(1, 7);
/// assert_eq!(a.site(), SiteId::new(1));
/// assert_eq!(a.object(), ObjectId::new(7));
/// assert_eq!(a.to_string(), "s1/o7");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GlobalAddr {
    site: SiteId,
    object: ObjectId,
}

impl GlobalAddr {
    /// Creates a global address from raw site and object indices.
    pub const fn new(site: u32, object: u64) -> Self {
        GlobalAddr {
            site: SiteId::new(site),
            object: ObjectId::new(object),
        }
    }

    /// Creates a global address from already-typed identifiers.
    pub const fn from_parts(site: SiteId, object: ObjectId) -> Self {
        GlobalAddr { site, object }
    }

    /// Returns the site component of the address.
    pub const fn site(self) -> SiteId {
        self.site
    }

    /// Returns the object component of the address.
    pub const fn object(self) -> ObjectId {
        self.object
    }
}

impl fmt::Display for GlobalAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.site, self.object)
    }
}

impl From<(SiteId, ObjectId)> for GlobalAddr {
    fn from((site, object): (SiteId, ObjectId)) -> Self {
        GlobalAddr { site, object }
    }
}

/// Identity of one log-keeping event: the vertex at which it occurred plus
/// its per-vertex sequence number (the paper's `e_{i,j}` notation, §3.1).
///
/// # Example
///
/// ```
/// use ggd_types::{EventId, EventIndex, GlobalAddr};
/// let e = EventId::new(GlobalAddr::new(3, 1), EventIndex::new(2).unwrap());
/// assert_eq!(e.to_string(), "e(s3/o1,2)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId {
    vertex: GlobalAddr,
    index: EventIndex,
}

impl EventId {
    /// Creates an event identity from a vertex and its event sequence number.
    pub const fn new(vertex: GlobalAddr, index: EventIndex) -> Self {
        EventId { vertex, index }
    }

    /// The vertex (global root) at which the event occurred.
    pub const fn vertex(self) -> GlobalAddr {
        self.vertex
    }

    /// The per-vertex sequence number of the event.
    pub const fn index(self) -> EventIndex {
        self.index
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e({},{})", self.vertex, self.index)
    }
}

/// Identity of a vertex of the *global root graph* (§2.2 of the paper).
///
/// The global root graph has two kinds of vertices:
///
/// * [`VertexId::Object`] — a *global root*: an object that has been
///   referenced from another site at least once;
/// * [`VertexId::SiteRoot`] — the *actual-root anchor* of a site: it stands
///   for the site's local root set (the paper's designated root objects,
///   e.g. object 1 of Figure 3) and is always an actual root of the global
///   root graph while it holds outgoing inter-site paths.
///
/// Dependency vectors are keyed by `VertexId`, so a vector entry keyed by a
/// `SiteRoot` that is still live is exactly the paper's "path from an actual
/// root" evidence used by the garbage test of Figure 6.
///
/// # Example
///
/// ```
/// use ggd_types::{GlobalAddr, VertexId};
/// let g = VertexId::object(2, 7);
/// let r = VertexId::site_root(1);
/// assert!(g.as_object().is_some());
/// assert!(r.is_site_root());
/// assert_eq!(g.to_string(), "s2/o7");
/// assert_eq!(r.to_string(), "root(s1)");
/// assert_eq!(VertexId::from(GlobalAddr::new(2, 7)), g);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VertexId {
    /// The anchor vertex standing for a site's local root set.
    SiteRoot(SiteId),
    /// A global root object.
    Object(GlobalAddr),
}

impl VertexId {
    /// Creates the vertex for a global-root object from raw indices.
    pub const fn object(site: u32, object: u64) -> Self {
        VertexId::Object(GlobalAddr::new(site, object))
    }

    /// Creates the actual-root anchor vertex of a site.
    pub const fn site_root(site: u32) -> Self {
        VertexId::SiteRoot(SiteId::new(site))
    }

    /// The site hosting this vertex.
    pub const fn site(self) -> SiteId {
        match self {
            VertexId::SiteRoot(s) => s,
            VertexId::Object(a) => a.site(),
        }
    }

    /// The object address, when the vertex is a global root.
    pub const fn as_object(self) -> Option<GlobalAddr> {
        match self {
            VertexId::SiteRoot(_) => None,
            VertexId::Object(a) => Some(a),
        }
    }

    /// True when the vertex is a site's actual-root anchor.
    pub const fn is_site_root(self) -> bool {
        matches!(self, VertexId::SiteRoot(_))
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VertexId::SiteRoot(s) => write!(f, "root({s})"),
            VertexId::Object(a) => write!(f, "{a}"),
        }
    }
}

impl From<GlobalAddr> for VertexId {
    fn from(addr: GlobalAddr) -> Self {
        VertexId::Object(addr)
    }
}

/// Granularity at which log-keeping information is maintained (§3.5).
///
/// The paper notes that individual remote objects need not be distinguished:
/// collocated objects can be lumped together into one "process". The default
/// granularity used by the worked example is per-object; the Amadeus
/// implementation referenced by the paper clusters per site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Granularity {
    /// One log-keeping "process" per global root (the paper's Figures 3–5).
    #[default]
    PerObject,
    /// One log-keeping "process" per site (the clustering of §3.5).
    PerSite,
}

impl Granularity {
    /// Maps a global root to the key of the log-keeping "process" that
    /// accounts for it under this granularity.
    pub fn cluster_of(self, addr: GlobalAddr) -> ClusterKey {
        match self {
            Granularity::PerObject => ClusterKey::Object(addr),
            Granularity::PerSite => ClusterKey::Site(addr.site()),
        }
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Granularity::PerObject => write!(f, "per-object"),
            Granularity::PerSite => write!(f, "per-site"),
        }
    }
}

/// Key of a log-keeping "process" under a given [`Granularity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ClusterKey {
    /// The process is a single global root.
    Object(GlobalAddr),
    /// The process is a whole site.
    Site(SiteId),
}

impl fmt::Display for ClusterKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterKey::Object(a) => write!(f, "{a}"),
            ClusterKey::Site(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_and_object_round_trip() {
        let s = SiteId::new(9);
        assert_eq!(SiteId::from(9), s);
        assert_eq!(s.index(), 9);
        let o = ObjectId::new(123);
        assert_eq!(ObjectId::from(123), o);
        assert_eq!(o.index(), 123);
    }

    #[test]
    fn global_addr_accessors_and_display() {
        let a = GlobalAddr::new(2, 5);
        assert_eq!(a.site(), SiteId::new(2));
        assert_eq!(a.object(), ObjectId::new(5));
        assert_eq!(a.to_string(), "s2/o5");
        let b: GlobalAddr = (SiteId::new(2), ObjectId::new(5)).into();
        assert_eq!(a, b);
    }

    #[test]
    fn global_addr_orders_by_site_then_object() {
        let a = GlobalAddr::new(1, 99);
        let b = GlobalAddr::new(2, 0);
        let c = GlobalAddr::new(2, 1);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn event_id_display() {
        let e = EventId::new(GlobalAddr::new(4, 2), EventIndex::new(7).unwrap());
        assert_eq!(e.vertex(), GlobalAddr::new(4, 2));
        assert_eq!(e.index().get(), 7);
        assert_eq!(e.to_string(), "e(s4/o2,7)");
    }

    #[test]
    fn granularity_clustering() {
        let a = GlobalAddr::new(3, 8);
        assert_eq!(Granularity::PerObject.cluster_of(a), ClusterKey::Object(a));
        assert_eq!(
            Granularity::PerSite.cluster_of(a),
            ClusterKey::Site(SiteId::new(3))
        );
        assert_eq!(Granularity::default(), Granularity::PerObject);
    }

    #[test]
    fn parts_round_trip() {
        // No JSON library is available offline (see vendor/README.md), so
        // exercise the decomposition round trip the wire format relies on.
        let a = GlobalAddr::new(1, 2);
        let back = GlobalAddr::from_parts(a.site(), a.object());
        assert_eq!(a, back);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SiteId::new(0).to_string(), "s0");
        assert_eq!(ObjectId::new(0).to_string(), "o0");
        assert_eq!(Granularity::PerSite.to_string(), "per-site");
        assert_eq!(Granularity::PerObject.to_string(), "per-object");
        assert_eq!(
            ClusterKey::Site(SiteId::new(1)).to_string(),
            "s1".to_string()
        );
        assert_eq!(
            ClusterKey::Object(GlobalAddr::new(1, 1)).to_string(),
            "s1/o1".to_string()
        );
    }
}
