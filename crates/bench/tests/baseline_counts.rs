//! Regression pins for the E3–E8 control/mutator message counts, sourced
//! from `BENCH_baseline.json` (schema `ggd-bench-baseline/v1`). The paper's
//! performance story is told in message counts, so a drifting count *is* a
//! perf regression (or, rarely, a justified semantic change — in which case
//! regenerate the baseline with
//! `cargo run --release -p ggd-bench --bin harness -- baseline` and call the
//! change out in review).

use ggd_bench::{baseline, baseline_json, BaselineEntry};

fn entry<'a>(entries: &'a [BaselineEntry], scenario: &str, collector: &str) -> &'a BaselineEntry {
    entries
        .iter()
        .find(|e| e.scenario == scenario && e.collector == collector)
        .unwrap_or_else(|| panic!("baseline misses {scenario}/{collector}"))
}

#[track_caller]
fn assert_counts(
    entries: &[BaselineEntry],
    scenario: &str,
    collector: &str,
    control: u64,
    mutator: u64,
    reclaimed: u64,
    latency: Option<u64>,
) {
    let e = entry(entries, scenario, collector);
    assert_eq!(
        e.control_msgs, control,
        "{scenario}/{collector}: control msgs"
    );
    assert_eq!(
        e.mutator_msgs, mutator,
        "{scenario}/{collector}: mutator msgs"
    );
    assert_eq!(e.reclaimed, reclaimed, "{scenario}/{collector}: reclaimed");
    assert_eq!(e.violations, 0, "{scenario}/{collector}: must stay safe");
    assert_eq!(
        e.detection_latency, latency,
        "{scenario}/{collector}: detection latency"
    );
}

/// E1/E2 — the paper example, all three collectors (the causal row is also
/// pinned by `paper_example_message_counts_are_stable` in `ggd-sim`).
#[test]
fn e1_paper_example_counts_are_pinned() {
    let entries = baseline();
    assert_counts(&entries, "paper_example", "causal", 12, 6, 3, Some(5));
    assert_counts(&entries, "paper_example", "tracing", 71, 6, 3, Some(18));
    assert_counts(&entries, "paper_example", "reflisting", 3, 6, 0, None);
}

/// E3 — list collapse at k=8: the causal collector beats tracing on control
/// traffic and both reclaim the full list.
#[test]
fn e3_list_collapse_counts_are_pinned() {
    let entries = baseline();
    assert_counts(&entries, "list_collapse_k8", "causal", 93, 15, 8, Some(24));
    assert_counts(&entries, "list_collapse_k8", "tracing", 125, 15, 8, Some(8));
}

/// E6 — the 8-ring: distributed-cycle comprehensiveness at O(k) messages.
#[test]
fn e6_ring_counts_are_pinned() {
    let entries = baseline();
    assert_counts(&entries, "ring_k8", "causal", 33, 9, 8, Some(24));
}

/// E7/E8 — the garbage island: message complexity tracks the garbage, not
/// the live population.
#[test]
fn e7_e8_garbage_island_counts_are_pinned() {
    let entries = baseline();
    assert_counts(
        &entries,
        "garbage_island_8_3_2",
        "causal",
        24,
        11,
        3,
        Some(10),
    );
}

/// E5 — third-party exchanges: the lazy mechanism needs no eager add
/// messages per exchange; reference listing pays one per forward.
#[test]
fn e5_third_party_counts_are_pinned() {
    let entries = baseline();
    assert_counts(&entries, "third_party_8", "causal", 25, 17, 0, None);
    assert_counts(&entries, "third_party_8", "reflisting", 8, 17, 0, None);
}

/// The checked-in `BENCH_baseline.json` must match what the harness would
/// regenerate — byte for byte. If this fails, either a collector's message
/// behaviour drifted (investigate!) or a justified change landed without
/// regenerating the baseline.
#[test]
fn checked_in_baseline_matches_regenerated_counts() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json");
    let on_disk = std::fs::read_to_string(path).expect("BENCH_baseline.json exists");
    let regenerated = baseline_json(&baseline());
    assert_eq!(
        on_disk, regenerated,
        "BENCH_baseline.json is stale; regenerate with \
         `cargo run --release -p ggd-bench --bin harness -- baseline`"
    );
}
