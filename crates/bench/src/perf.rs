//! The wall-clock performance suite (`cargo run --release -p ggd-bench
//! --bin perf`).
//!
//! Scales the generator to production-sized scenarios (64–256 sites,
//! 10k–100k objects, churn + island + hub mixes), runs them on both the
//! deterministic [`SimNetwork`](ggd_net::SimNetwork) and the OS-thread
//! [`ThreadedNetwork`](ggd_net::ThreadedNetwork), and reports ops/sec,
//! per-phase wall clock, peak queued bytes and allocation counts as
//! `BENCH_perf.json` — the perf trajectory future PRs must beat. Each
//! scenario runs under the incremental delta pipeline and, in comparison
//! mode, under the retained full-rescan pipeline, so the speedup is
//! measured, not asserted. See EXPERIMENTS.md ("Perf suite").

use std::fmt::Write as _;
use std::time::Instant;

use ggd_mutator::generator::{build_perf_scenario, PerfSpec};
use ggd_mutator::{Scenario, Step};
use ggd_obs::ObsConfig;
use ggd_sim::{
    CausalCollector, Cluster, ClusterConfig, DurabilityConfig, ParallelCluster, RunReport, SyncMode,
};
use ggd_types::SiteId;

use crate::json::{self, JsonValue};

/// One scenario of the perf matrix.
#[derive(Debug, Clone)]
pub struct PerfCase {
    /// Stable row name, e.g. `"churn_100k"`.
    pub name: &'static str,
    /// Generator parameters.
    pub spec: PerfSpec,
    /// Generator seed.
    pub seed: u64,
    /// Also run on the threaded transport (sim always runs).
    pub threaded: bool,
    /// Also run the retained full-rescan pipeline for a measured speedup
    /// (skipped matrix-wide by `--no-compare`).
    pub compare: bool,
    /// Worker counts for the parallel driver: one `transport: "parallel"`
    /// row per count (empty slice = sequential transports only).
    pub workers: &'static [u32],
    /// Also run the sim delta pipeline with observability enabled and emit
    /// an `"obs": 1` row, so the obs-on overhead is measured against the
    /// obs-off row of the same key (schema v4).
    pub obs_row: bool,
}

/// The scenario matrix. `smoke` selects the reduced CI matrix (16 sites /
/// 2k objects); the full matrix is what `BENCH_perf.json` commits and
/// *includes* the smoke case, so the CI job always has committed rows to
/// regress against.
pub fn perf_matrix(smoke: bool) -> Vec<PerfCase> {
    let smoke_case = PerfCase {
        name: "smoke_churn_2k",
        spec: PerfSpec::mix(16, 2_000, 1_000),
        seed: 7,
        threaded: true,
        compare: true,
        workers: &[1, 2],
        obs_row: true,
    };
    if smoke {
        return vec![smoke_case];
    }
    vec![
        smoke_case,
        PerfCase {
            name: "churn_10k",
            spec: PerfSpec::mix(64, 10_000, 6_000),
            seed: 7,
            threaded: true,
            compare: true,
            workers: &[],
            obs_row: false,
        },
        PerfCase {
            name: "island_hub_mix_20k",
            spec: PerfSpec {
                islands: 16,
                island_span: 4,
                hubs: 8,
                hub_spokes: 6,
                ..PerfSpec::mix(64, 20_000, 6_000)
            },
            seed: 11,
            threaded: true,
            compare: true,
            workers: &[],
            obs_row: false,
        },
        PerfCase {
            name: "wide_256_sites_50k",
            spec: PerfSpec::mix(256, 50_000, 10_000),
            seed: 13,
            threaded: false,
            compare: true,
            workers: &[],
            obs_row: true,
        },
        PerfCase {
            name: "churn_100k",
            spec: PerfSpec::mix(64, 100_000, 20_000),
            seed: 17,
            threaded: false,
            compare: true,
            // The scaling curve committed to BENCH_perf.json (see
            // EXPERIMENTS.md, "Parallel driver scaling").
            workers: &[1, 2, 4, 8],
            obs_row: true,
        },
    ]
}

/// One measured row of `BENCH_perf.json`.
#[derive(Debug, Clone)]
pub struct PerfEntry {
    /// Scenario name.
    pub name: String,
    /// Transport the row ran on (`"sim"` or `"threaded"`).
    pub transport: String,
    /// Snapshot pipeline (`"delta"` or `"full"`).
    pub mode: String,
    /// Sites in the cluster.
    pub sites: u32,
    /// Pre-populated objects.
    pub objects: u32,
    /// Mutator-op steps executed.
    pub ops: u64,
    /// Scenario construction time.
    pub build_ms: f64,
    /// Cluster run time (the measured phase).
    pub run_ms: f64,
    /// Mutator throughput over the run phase.
    pub ops_per_sec: f64,
    /// Control messages sent.
    pub control_msgs: u64,
    /// Mutator messages sent.
    pub mutator_msgs: u64,
    /// High-water mark of queued payload bytes.
    pub peak_queued_bytes: u64,
    /// Heap allocations during the run phase (counting allocator).
    pub allocations: u64,
    /// Bytes allocated during the run phase.
    pub alloc_bytes: u64,
    /// Objects reclaimed.
    pub reclaimed: u64,
    /// Residual garbage at quiescence.
    pub residual: u64,
    /// GGD verdicts applied.
    pub verdicts: u64,
    /// `full.run_ms / delta.run_ms`, set on delta rows of compared cases.
    pub speedup_vs_full: Option<f64>,
    /// Worker threads, set on `transport: "parallel"` rows only (schema v3;
    /// absent on rows written by older suites).
    pub workers: Option<u32>,
    /// Control-plane wire bytes actually sent (encoded frames; schema v3
    /// carried it on parallel rows only, schema v4 on every measured run).
    pub control_bytes: Option<u64>,
    /// `control_bytes / reclaimed` — the wire cost of reclaiming one
    /// object (schema v4; set when the run reclaimed anything).
    pub bytes_per_reclaimed_object: Option<f64>,
    /// True when the row ran with observability enabled (schema v4;
    /// rendered as `"obs": 1` and absent on obs-off rows, keeping older
    /// rows byte-identical).
    pub obs: bool,
}

/// Counting-allocator probe: returns cumulative `(allocations, bytes)`.
/// The perf binary installs the global allocator and passes its counters;
/// the library stays allocator-agnostic (tests pass a constant probe).
pub type AllocProbe<'a> = &'a dyn Fn() -> (u64, u64);

fn op_count(scenario: &Scenario) -> u64 {
    scenario
        .steps()
        .iter()
        .filter(|s| matches!(s, Step::Op(_)))
        .count() as u64
}

fn perf_config(mode: SyncMode) -> ClusterConfig {
    ClusterConfig {
        sync_mode: mode,
        // The oracle's global reachability pass costs O(cluster) per local
        // collection — it would dominate the measurement in both modes.
        safety_oracle: false,
        ..ClusterConfig::default()
    }
}

/// Per-phase measurements of one run, grouped for [`entry_from`].
struct Measured {
    ops: u64,
    build_ms: f64,
    run_ms: f64,
    allocations: u64,
    alloc_bytes: u64,
}

fn entry_from(
    case: &PerfCase,
    transport: &str,
    mode: &str,
    measured: Measured,
    report: &RunReport,
) -> PerfEntry {
    PerfEntry {
        name: case.name.to_owned(),
        transport: transport.to_owned(),
        mode: mode.to_owned(),
        sites: case.spec.sites,
        objects: case.spec.objects,
        ops: measured.ops,
        build_ms: measured.build_ms,
        run_ms: measured.run_ms,
        ops_per_sec: if measured.run_ms > 0.0 {
            measured.ops as f64 / (measured.run_ms / 1000.0)
        } else {
            0.0
        },
        control_msgs: report.control_messages(),
        mutator_msgs: report.mutator_messages(),
        peak_queued_bytes: report.net.peak_queued_bytes(),
        allocations: measured.allocations,
        alloc_bytes: measured.alloc_bytes,
        reclaimed: report.reclaimed,
        residual: report.residual_garbage,
        verdicts: report.verdicts,
        speedup_vs_full: None,
        workers: None,
        control_bytes: Some(report.net.control_bytes_sent()),
        bytes_per_reclaimed_object: (report.reclaimed > 0)
            .then(|| report.net.control_bytes_sent() as f64 / report.reclaimed as f64),
        obs: false,
    }
}

/// Runs one case on the simulated transport under `mode`. With `obs_on`
/// the full observability stack (registries, tracing, lifecycle ledger)
/// records throughout the run and the row is tagged `"obs": 1`, so its
/// wall clock measures the enabled-path overhead against the obs-off row.
fn run_sim(
    case: &PerfCase,
    scenario: &Scenario,
    build_ms: f64,
    mode: SyncMode,
    obs_on: bool,
    probe: AllocProbe<'_>,
) -> PerfEntry {
    let ops = op_count(scenario);
    let config = ClusterConfig {
        obs: if obs_on {
            ObsConfig::enabled()
        } else {
            ObsConfig::default()
        },
        ..perf_config(mode)
    };
    let (alloc_before, bytes_before) = probe();
    let start = Instant::now();
    let mut cluster = Cluster::from_scenario(scenario, config, CausalCollector::new);
    let report = cluster.run(scenario);
    let run_ms = start.elapsed().as_secs_f64() * 1000.0;
    let (alloc_after, bytes_after) = probe();
    let label = match mode {
        SyncMode::Incremental => "delta",
        SyncMode::FullRescan => "full",
    };
    let mut entry = entry_from(
        case,
        "sim",
        label,
        Measured {
            ops,
            build_ms,
            run_ms,
            allocations: alloc_after.saturating_sub(alloc_before),
            alloc_bytes: bytes_after.saturating_sub(bytes_before),
        },
        &report,
    );
    entry.obs = obs_on;
    entry
}

/// Runs one case on the threaded transport (delta pipeline).
fn run_threaded(
    case: &PerfCase,
    scenario: &Scenario,
    build_ms: f64,
    probe: AllocProbe<'_>,
) -> PerfEntry {
    let ops = op_count(scenario);
    let (alloc_before, bytes_before) = probe();
    let start = Instant::now();
    let mut cluster = Cluster::threaded_from_scenario(
        scenario,
        perf_config(SyncMode::Incremental),
        CausalCollector::new,
    );
    let report = cluster.run(scenario);
    let run_ms = start.elapsed().as_secs_f64() * 1000.0;
    let (alloc_after, bytes_after) = probe();
    entry_from(
        case,
        "threaded",
        "delta",
        Measured {
            ops,
            build_ms,
            run_ms,
            allocations: alloc_after.saturating_sub(alloc_before),
            alloc_bytes: bytes_after.saturating_sub(bytes_before),
        },
        &report,
    )
}

/// Runs one case on the parallel worker-per-shard driver (delta pipeline)
/// with `workers` threads. The row carries `workers` and the real encoded
/// control-byte volume, so the committed scaling curve measures both wall
/// clock and wire cost.
fn run_parallel(
    case: &PerfCase,
    scenario: &Scenario,
    build_ms: f64,
    workers: u32,
    probe: AllocProbe<'_>,
) -> PerfEntry {
    let ops = op_count(scenario);
    let config = ClusterConfig {
        workers,
        ..perf_config(SyncMode::Incremental)
    };
    let (alloc_before, bytes_before) = probe();
    let start = Instant::now();
    let (report, _cluster) = ParallelCluster::run_seeded(scenario, config, CausalCollector::new);
    let run_ms = start.elapsed().as_secs_f64() * 1000.0;
    let (alloc_after, bytes_after) = probe();
    let mut entry = entry_from(
        case,
        "parallel",
        "delta",
        Measured {
            ops,
            build_ms,
            run_ms,
            allocations: alloc_after.saturating_sub(alloc_before),
            alloc_bytes: bytes_after.saturating_sub(bytes_before),
        },
        &report,
    );
    entry.workers = Some(workers);
    entry
}

/// Runs the whole matrix. With `compare`, each sim case additionally runs
/// the retained full-rescan pipeline and the delta row carries the measured
/// speedup. `progress` receives one line per finished row.
pub fn run_matrix(
    cases: &[PerfCase],
    compare: bool,
    probe: AllocProbe<'_>,
    mut progress: impl FnMut(&PerfEntry),
) -> Vec<PerfEntry> {
    let mut entries = Vec::new();
    for case in cases {
        let start = Instant::now();
        let scenario = build_perf_scenario(&case.spec, case.seed);
        let build_ms = start.elapsed().as_secs_f64() * 1000.0;

        let mut delta = run_sim(
            case,
            &scenario,
            build_ms,
            SyncMode::Incremental,
            false,
            probe,
        );
        if compare && case.compare {
            let full = run_sim(
                case,
                &scenario,
                build_ms,
                SyncMode::FullRescan,
                false,
                probe,
            );
            if delta.run_ms > 0.0 {
                delta.speedup_vs_full = Some(full.run_ms / delta.run_ms);
            }
            progress(&full);
            entries.push(full);
        }
        progress(&delta);
        entries.push(delta);

        if case.obs_row {
            let obs = run_sim(
                case,
                &scenario,
                build_ms,
                SyncMode::Incremental,
                true,
                probe,
            );
            progress(&obs);
            entries.push(obs);
        }

        if case.threaded {
            let threaded = run_threaded(case, &scenario, build_ms, probe);
            progress(&threaded);
            entries.push(threaded);
        }

        for &workers in case.workers {
            let parallel = run_parallel(case, &scenario, build_ms, workers, probe);
            progress(&parallel);
            entries.push(parallel);
        }
    }
    entries
}

/// One case of the recovery matrix: a perf scenario run with durability on,
/// then recovered site by site.
#[derive(Debug, Clone)]
pub struct RecoveryCase {
    /// Row name; matches the main matrix's case of the same spec/seed so
    /// the `wal` row is directly comparable to the committed `delta` row.
    pub name: &'static str,
    /// Generator parameters.
    pub spec: PerfSpec,
    /// Generator seed.
    pub seed: u64,
    /// WAL records between checkpoints. Tuned per scale: every checkpoint
    /// encodes the full heap image, so the cadence must amortize it.
    pub checkpoint_every: u32,
}

/// The recovery matrix (the `ggd-bench-perf/v2` rows): WAL append overhead
/// and full-cluster replay time, at smoke scale on every CI run and at the
/// 100k-object scale in the committed full matrix.
pub fn recovery_matrix(smoke: bool) -> Vec<RecoveryCase> {
    let smoke_case = RecoveryCase {
        name: "smoke_churn_2k",
        spec: PerfSpec::mix(16, 2_000, 1_000),
        seed: 7,
        checkpoint_every: 256,
    };
    if smoke {
        return vec![smoke_case];
    }
    vec![
        smoke_case,
        RecoveryCase {
            name: "churn_100k",
            spec: PerfSpec::mix(64, 100_000, 20_000),
            seed: 17,
            checkpoint_every: 4_096,
        },
    ]
}

/// Runs the recovery matrix. Each case produces two rows:
///
/// * `mode: "wal"` — the scenario on the sim transport with the in-memory
///   durable medium: every event WAL-encoded and appended, checkpoints at
///   the case's cadence. Compare `run_ms` against the committed `delta` row
///   of the same name for the write-ahead overhead.
/// * `mode: "replay"` — every site crash+recovered in turn after the run
///   (checkpoint decode + WAL replay through the runtime); `run_ms` is the
///   total wall clock of all recoveries and `ops` the WAL records replayed.
pub fn run_recovery_matrix(
    cases: &[RecoveryCase],
    probe: AllocProbe<'_>,
    mut progress: impl FnMut(&PerfEntry),
) -> Vec<PerfEntry> {
    let mut entries = Vec::new();
    for case in cases {
        let start = Instant::now();
        let scenario = build_perf_scenario(&case.spec, case.seed);
        let build_ms = start.elapsed().as_secs_f64() * 1000.0;
        let perf_case = PerfCase {
            name: case.name,
            spec: case.spec,
            seed: case.seed,
            threaded: false,
            compare: false,
            workers: &[],
            obs_row: false,
        };

        let config = ClusterConfig {
            durability: DurabilityConfig::memory().with_checkpoint_every(case.checkpoint_every),
            ..perf_config(SyncMode::Incremental)
        };
        let ops = op_count(&scenario);
        let (alloc_before, bytes_before) = probe();
        let start = Instant::now();
        let mut cluster = Cluster::from_scenario(&scenario, config, CausalCollector::new);
        let report = cluster.run(&scenario);
        let run_ms = start.elapsed().as_secs_f64() * 1000.0;
        let (alloc_after, bytes_after) = probe();
        let wal = entry_from(
            &perf_case,
            "sim",
            "wal",
            Measured {
                ops,
                build_ms,
                run_ms,
                allocations: alloc_after.saturating_sub(alloc_before),
                alloc_bytes: bytes_after.saturating_sub(bytes_before),
            },
            &report,
        );
        progress(&wal);
        entries.push(wal);

        // Replay: recover every site from its store, one by one.
        let replayed_before = cluster.store_stats().records_replayed;
        let (alloc_before, bytes_before) = probe();
        let start = Instant::now();
        for site in 0..scenario.site_count() {
            cluster.crash_and_recover(SiteId::new(site));
        }
        let replay_ms = start.elapsed().as_secs_f64() * 1000.0;
        let (alloc_after, bytes_after) = probe();
        let replayed = cluster
            .store_stats()
            .records_replayed
            .saturating_sub(replayed_before);
        let mut replay = entry_from(
            &perf_case,
            "sim",
            "replay",
            Measured {
                ops: replayed,
                build_ms,
                run_ms: replay_ms,
                allocations: alloc_after.saturating_sub(alloc_before),
                alloc_bytes: bytes_after.saturating_sub(bytes_before),
            },
            &report,
        );
        // Replay sends nothing — the wire columns belong to the wal row.
        replay.control_bytes = None;
        replay.bytes_per_reclaimed_object = None;
        progress(&replay);
        entries.push(replay);
    }
    entries
}

/// The `BENCH_perf.json` schema identifier. `v2` added the recovery rows
/// (`mode: "wal"` / `mode: "replay"`); `v3` added the parallel-driver rows
/// (`transport: "parallel"`) with the optional `workers` and
/// `control_bytes` fields; `v4` extends `control_bytes` to every measured
/// run and adds the optional `bytes_per_reclaimed_object` (wire cost per
/// reclaimed object) and `obs` (`1` on observability-enabled rows)
/// columns. All optional fields are emitted only on rows that carry them,
/// so rows written by older suites remain byte-identical.
///
/// `v5` changes no row field: it marks the `allocations` column as a gated
/// baseline (see [`check_allocations`]) now that the arena heap makes the
/// count a meaningful budget rather than an observation. Rows written by a
/// v4 suite are byte-identical under v5.
pub const PERF_SCHEMA: &str = "ggd-bench-perf/v5";

/// Renders entries as the `BENCH_perf.json` document.
pub fn perf_json(entries: &[PerfEntry]) -> String {
    let mut out = format!("{{\n  \"schema\": \"{PERF_SCHEMA}\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let speedup = match e.speedup_vs_full {
            Some(s) => format!("{s:.2}"),
            None => "null".to_owned(),
        };
        // Optional fields are emitted only when present, keeping rows
        // produced by older suites (and the carried-over v2/v3 rows of
        // the committed file) byte-identical.
        let mut optional = String::new();
        if let Some(workers) = e.workers {
            let _ = write!(optional, ", \"workers\": {workers}");
        }
        if let Some(control_bytes) = e.control_bytes {
            let _ = write!(optional, ", \"control_bytes\": {control_bytes}");
        }
        if let Some(bytes_per_obj) = e.bytes_per_reclaimed_object {
            let _ = write!(
                optional,
                ", \"bytes_per_reclaimed_object\": {bytes_per_obj:.1}"
            );
        }
        if e.obs {
            let _ = write!(optional, ", \"obs\": 1");
        }
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"transport\": \"{}\", \"mode\": \"{}\", \"sites\": {}, \
             \"objects\": {}, \"ops\": {}, \"build_ms\": {:.1}, \"run_ms\": {:.1}, \
             \"ops_per_sec\": {:.0}, \"control_msgs\": {}, \"mutator_msgs\": {}, \
             \"peak_queued_bytes\": {}, \"allocations\": {}, \"alloc_bytes\": {}, \
             \"reclaimed\": {}, \"residual\": {}, \"verdicts\": {}, \"speedup_vs_full\": {}{}}}{}",
            e.name,
            e.transport,
            e.mode,
            e.sites,
            e.objects,
            e.ops,
            e.build_ms,
            e.run_ms,
            e.ops_per_sec,
            e.control_msgs,
            e.mutator_msgs,
            e.peak_queued_bytes,
            e.allocations,
            e.alloc_bytes,
            e.reclaimed,
            e.residual,
            e.verdicts,
            speedup,
            optional,
            if i + 1 < entries.len() { "," } else { "" },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Fields every `BENCH_perf.json` entry must carry, with numeric type.
const REQUIRED_NUMBERS: &[&str] = &[
    "sites",
    "objects",
    "ops",
    "build_ms",
    "run_ms",
    "ops_per_sec",
    "control_msgs",
    "mutator_msgs",
    "peak_queued_bytes",
    "allocations",
    "alloc_bytes",
    "reclaimed",
    "residual",
    "verdicts",
];

/// Parses and schema-checks a `BENCH_perf.json` document.
///
/// # Errors
///
/// Returns a description of the first schema violation found.
pub fn validate_perf_json(text: &str) -> Result<JsonValue, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(JsonValue::as_str) != Some(PERF_SCHEMA) {
        return Err(format!("schema field must be \"{PERF_SCHEMA}\""));
    }
    let entries = doc
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or("entries must be an array")?;
    if entries.is_empty() {
        return Err("entries must not be empty".to_owned());
    }
    for (i, entry) in entries.iter().enumerate() {
        for key in ["name", "transport", "mode"] {
            if entry.get(key).and_then(JsonValue::as_str).is_none() {
                return Err(format!("entry #{i}: missing string field \"{key}\""));
            }
        }
        for key in REQUIRED_NUMBERS {
            if entry.get(key).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("entry #{i}: missing numeric field \"{key}\""));
            }
        }
        match entry.get("speedup_vs_full") {
            Some(JsonValue::Null) | Some(JsonValue::Number(_)) => {}
            _ => {
                return Err(format!(
                    "entry #{i}: speedup_vs_full must be number or null"
                ))
            }
        }
        // Optional fields (v3/v4): absent on rows carried over from older
        // suites, numeric when present.
        for key in [
            "workers",
            "control_bytes",
            "bytes_per_reclaimed_object",
            "obs",
        ] {
            match entry.get(key) {
                None | Some(JsonValue::Number(_)) => {}
                _ => {
                    return Err(format!(
                        "entry #{i}: \"{key}\" must be numeric when present"
                    ))
                }
            }
        }
    }
    Ok(doc)
}

/// Compares a fresh smoke run against the committed `BENCH_perf.json`:
/// every fresh row whose `(name, transport, mode)` also appears in the
/// committed document must not be more than `factor`× slower. Rows faster
/// than `floor_ms` in the committed file are exempt (pure noise).
///
/// # Errors
///
/// Returns a description of the first regression (or bookkeeping problem).
pub fn check_regression(
    committed: &JsonValue,
    fresh: &[PerfEntry],
    factor: f64,
    floor_ms: f64,
) -> Result<(), String> {
    let entries = committed
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or("committed file has no entries")?;
    let mut compared = 0;
    for row in fresh {
        let baseline = entries.iter().find(|e| {
            e.get("name").and_then(JsonValue::as_str) == Some(row.name.as_str())
                && e.get("transport").and_then(JsonValue::as_str) == Some(row.transport.as_str())
                && e.get("mode").and_then(JsonValue::as_str) == Some(row.mode.as_str())
                // Parallel rows at different worker counts are distinct
                // baselines; sequential rows carry no `workers` field.
                && e.get("workers").and_then(JsonValue::as_u64)
                    == row.workers.map(u64::from)
                // Obs-on rows only regress against obs-on baselines — an
                // obs-off committed row is the wrong yardstick for the
                // instrumented run (and vice versa).
                && (e.get("obs").and_then(JsonValue::as_u64) == Some(1)) == row.obs
        });
        let Some(baseline) = baseline else {
            continue; // new row: nothing to regress against
        };
        let committed_ms = baseline
            .get("run_ms")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{}: committed row has no run_ms", row.name))?;
        compared += 1;
        if committed_ms < floor_ms {
            continue;
        }
        if row.run_ms > committed_ms * factor {
            return Err(format!(
                "{}/{}/{}: run_ms {:.1} exceeds {factor}x the committed {:.1}",
                row.name, row.transport, row.mode, row.run_ms, committed_ms
            ));
        }
    }
    if compared == 0 {
        return Err("no fresh row matched any committed row".to_owned());
    }
    Ok(())
}

/// Regression gate on the wire-volume columns: every fresh row whose
/// committed counterpart carries `control_bytes` must not exceed `factor`×
/// the committed volume. Unlike wall clock, control bytes on the sim
/// transport are deterministic, so this catches protocol-bloat regressions
/// that a 2× wall-clock gate would wave through.
///
/// # Errors
///
/// Returns a description of the first blown-up row, or of a run where no
/// row could be compared at all.
pub fn check_control_bytes(
    committed: &JsonValue,
    fresh: &[PerfEntry],
    factor: f64,
) -> Result<(), String> {
    let entries = committed
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or("committed file has no entries")?;
    let mut compared = 0;
    for row in fresh {
        let Some(fresh_bytes) = row.control_bytes else {
            continue;
        };
        let committed_bytes = entries.iter().find_map(|e| {
            (e.get("name").and_then(JsonValue::as_str) == Some(row.name.as_str())
                && e.get("transport").and_then(JsonValue::as_str) == Some(row.transport.as_str())
                && e.get("mode").and_then(JsonValue::as_str) == Some(row.mode.as_str())
                && e.get("workers").and_then(JsonValue::as_u64) == row.workers.map(u64::from)
                && (e.get("obs").and_then(JsonValue::as_u64) == Some(1)) == row.obs)
                .then(|| e.get("control_bytes").and_then(JsonValue::as_u64))
                .flatten()
        });
        let Some(committed_bytes) = committed_bytes else {
            continue; // row predates v4 (or is new): nothing to gate
        };
        compared += 1;
        if fresh_bytes as f64 > committed_bytes as f64 * factor {
            return Err(format!(
                "{}/{}/{}: control_bytes {fresh_bytes} exceeds {factor}x the committed \
                 {committed_bytes}",
                row.name, row.transport, row.mode
            ));
        }
    }
    if compared == 0 {
        return Err("no fresh row had a committed control_bytes baseline".to_owned());
    }
    Ok(())
}

/// Regression gate on the `allocations` column: every fresh row whose
/// `(name, transport, mode, workers, obs)` key has a committed counterpart
/// must not allocate more than `factor`× the committed count. Allocation
/// counts are near-deterministic for a fixed scenario (unlike wall clock
/// they do not depend on machine speed), so a modest factor catches
/// "reintroduced a per-op allocation" regressions that the 2× wall-clock
/// gate would absorb on faster hardware. Committed rows under `floor`
/// allocations are exempt — tiny rows are dominated by one-time lazy
/// initialization.
///
/// # Errors
///
/// Returns a description of the first blown-up row, or of a run where no
/// row could be compared at all.
pub fn check_allocations(
    committed: &JsonValue,
    fresh: &[PerfEntry],
    factor: f64,
    floor: u64,
) -> Result<(), String> {
    let entries = committed
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or("committed file has no entries")?;
    let mut compared = 0;
    for row in fresh {
        let committed_allocs = entries.iter().find_map(|e| {
            (e.get("name").and_then(JsonValue::as_str) == Some(row.name.as_str())
                && e.get("transport").and_then(JsonValue::as_str) == Some(row.transport.as_str())
                && e.get("mode").and_then(JsonValue::as_str) == Some(row.mode.as_str())
                && e.get("workers").and_then(JsonValue::as_u64) == row.workers.map(u64::from)
                && (e.get("obs").and_then(JsonValue::as_u64) == Some(1)) == row.obs)
                .then(|| e.get("allocations").and_then(JsonValue::as_u64))
                .flatten()
        });
        let Some(committed_allocs) = committed_allocs else {
            continue; // new row: nothing to regress against
        };
        compared += 1;
        if committed_allocs < floor {
            continue;
        }
        if row.allocations as f64 > committed_allocs as f64 * factor {
            return Err(format!(
                "{}/{}/{}: allocations {} exceeds {factor}x the committed {committed_allocs}",
                row.name, row.transport, row.mode, row.allocations
            ));
        }
    }
    if compared == 0 {
        return Err("no fresh row had a committed allocations baseline".to_owned());
    }
    Ok(())
}

/// The observability overhead gate: for every `"obs": 1` row, the obs-off
/// row of the same `(name, transport, mode, workers)` must exist in the
/// same run, and the instrumented run must not be more than `max_ratio`×
/// slower. Pairs whose obs-off run is under `floor_ms` are exempt from the
/// ratio (sub-floor runs are scheduling noise) but still count as paired.
/// The committed full matrix holds the tight ratio measured at the
/// 100k-object scale; CI calls this with a looser ratio because smoke rows
/// run tens of milliseconds.
///
/// # Errors
///
/// Returns a description of the first blown pair, of an obs row with no
/// obs-off sibling, or of a run with no obs row at all.
pub fn check_obs_overhead(
    entries: &[PerfEntry],
    max_ratio: f64,
    floor_ms: f64,
) -> Result<(), String> {
    let mut paired = 0;
    for on in entries.iter().filter(|e| e.obs) {
        let off = entries.iter().find(|e| {
            !e.obs
                && e.name == on.name
                && e.transport == on.transport
                && e.mode == on.mode
                && e.workers == on.workers
        });
        let Some(off) = off else {
            return Err(format!(
                "{}/{}/{}: obs row has no obs-off sibling to compare against",
                on.name, on.transport, on.mode
            ));
        };
        paired += 1;
        if off.run_ms < floor_ms || off.run_ms <= 0.0 {
            continue;
        }
        let ratio = on.run_ms / off.run_ms;
        if ratio > max_ratio {
            return Err(format!(
                "{}/{}/{}: obs-enabled run is {ratio:.3}x the obs-off run \
                 ({:.1}ms vs {:.1}ms), above the {max_ratio}x gate",
                on.name, on.transport, on.mode, on.run_ms, off.run_ms
            ));
        }
    }
    if paired == 0 {
        return Err("no row ran with observability enabled".to_owned());
    }
    Ok(())
}

/// Verifies that every compared delta row retained at least `min` speedup
/// over its same-machine full-rescan run. Unlike the absolute wall-clock
/// gate this ratio is machine-independent, so it catches "the delta
/// pipeline lost its advantage" regressions even on CI hardware whose
/// absolute numbers differ wildly from the committed baseline's.
///
/// # Errors
///
/// Returns a description of the first row below `min`, or of a run with
/// no compared rows at all.
pub fn check_speedup(entries: &[PerfEntry], min: f64) -> Result<(), String> {
    let mut checked = 0;
    for entry in entries {
        if let Some(speedup) = entry.speedup_vs_full {
            checked += 1;
            if speedup < min {
                return Err(format!(
                    "{}/{}: delta speedup vs full rescan is {speedup:.2}x, below the {min}x gate",
                    entry.name, entry.transport
                ));
            }
        }
    }
    if checked == 0 {
        return Err("no row carried a speedup (run with compare enabled)".to_owned());
    }
    Ok(())
}

/// Verifies the parallel driver's scaling sanity on this machine: for every
/// case that produced both a 1-worker and a 2-worker `parallel` row, the
/// 2-worker run must be at least `min` times faster. Only meaningful on
/// hosts with ≥ 2 CPUs — the caller gates on
/// `std::thread::available_parallelism()` (a 1-core host serializes the
/// workers, making the ratio ~1.0 by construction).
///
/// # Errors
///
/// Returns a description of the first case below `min`, or of a run with no
/// 1-vs-2-worker pair at all.
pub fn check_parallel_scaling(entries: &[PerfEntry], min: f64) -> Result<(), String> {
    let mut checked = 0;
    for one in entries {
        if one.workers != Some(1) {
            continue;
        }
        let Some(two) = entries
            .iter()
            .find(|e| e.name == one.name && e.workers == Some(2))
        else {
            continue;
        };
        checked += 1;
        if two.run_ms <= 0.0 {
            continue;
        }
        let ratio = one.run_ms / two.run_ms;
        if ratio < min {
            return Err(format!(
                "{}: 2-worker run is only {ratio:.2}x faster than 1-worker \
                 ({:.1}ms vs {:.1}ms), below the {min}x gate",
                one.name, two.run_ms, one.run_ms
            ));
        }
    }
    if checked == 0 {
        return Err("no case produced both 1- and 2-worker parallel rows".to_owned());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe() -> (u64, u64) {
        (0, 0)
    }

    #[test]
    fn smoke_matrix_runs_and_round_trips() {
        let cases = perf_matrix(true);
        // Tests run unoptimized: shrink the smoke case further.
        let cases: Vec<PerfCase> = cases
            .into_iter()
            .map(|mut c| {
                c.spec = PerfSpec::mix(8, 400, 200);
                c.threaded = false;
                c.workers = &[];
                c.obs_row = false;
                c
            })
            .collect();
        let entries = run_matrix(&cases, true, &probe, |_| {});
        assert_eq!(entries.len(), 2, "full + delta row");
        let delta = entries.iter().find(|e| e.mode == "delta").unwrap();
        let full = entries.iter().find(|e| e.mode == "full").unwrap();
        assert!(delta.speedup_vs_full.is_some());
        assert_eq!(delta.ops, full.ops);
        assert_eq!(
            delta.control_msgs, full.control_msgs,
            "pipelines must emit identical control traffic"
        );
        assert_eq!(delta.verdicts, full.verdicts);

        let text = perf_json(&entries);
        let doc = validate_perf_json(&text).expect("schema-valid");
        check_regression(&doc, &entries, 2.0, 0.0).expect("identical rows cannot regress");
        check_speedup(&entries, 0.01).expect("compared rows carry a speedup");
        assert!(
            check_speedup(&entries, 1e9).is_err(),
            "absurd gate must trip"
        );
        assert!(
            check_speedup(&[], 1.0).is_err(),
            "no compared rows is an error"
        );

        let mut slow = entries.clone();
        slow[0].run_ms = slow[0].run_ms * 100.0 + 1000.0;
        assert!(check_regression(&doc, &slow, 2.0, 0.0).is_err());
    }

    #[test]
    fn parallel_rows_round_trip_with_workers_and_control_bytes() {
        let cases = vec![PerfCase {
            name: "smoke_churn_2k",
            spec: PerfSpec::mix(8, 400, 200),
            seed: 7,
            threaded: false,
            compare: false,
            workers: &[1, 2],
            obs_row: false,
        }];
        let entries = run_matrix(&cases, false, &probe, |_| {});
        assert_eq!(entries.len(), 3, "delta + two parallel rows");
        let parallel: Vec<&PerfEntry> = entries
            .iter()
            .filter(|e| e.transport == "parallel")
            .collect();
        assert_eq!(parallel.len(), 2);
        for row in &parallel {
            assert!(row.workers.is_some());
            assert!(
                row.control_bytes.unwrap() > 0,
                "parallel rows measure real encoded control bytes"
            );
            assert!(row.peak_queued_bytes > 0);
        }
        // Same scenario, same collector: the reclaim outcome must agree
        // with the sequential row regardless of the driver.
        let delta = entries.iter().find(|e| e.transport == "sim").unwrap();
        assert_eq!(parallel[0].reclaimed, delta.reclaimed);
        assert_eq!(parallel[0].residual, delta.residual);

        let text = perf_json(&entries);
        assert!(text.contains("\"workers\": 1") && text.contains("\"workers\": 2"));
        assert!(text.contains("\"control_bytes\": "));
        // Sequential rows carry the v4 wire columns but never `workers`
        // or the obs tag.
        let delta_line = text
            .lines()
            .find(|l| l.contains("\"transport\": \"sim\""))
            .unwrap();
        assert!(!delta_line.contains("workers") && !delta_line.contains("\"obs\""));
        assert!(delta_line.contains("control_bytes"));
        assert!(delta_line.contains("bytes_per_reclaimed_object"));
        let doc = validate_perf_json(&text).expect("schema-valid");
        check_regression(&doc, &entries, 2.0, 0.0).expect("identical rows cannot regress");

        // Scaling check plumbing (the CI gate threshold only applies on
        // multi-core hosts; here we exercise pass/fail mechanics).
        check_parallel_scaling(&entries, 0.0).expect("pair present");
        assert!(
            check_parallel_scaling(&entries, 1e9).is_err(),
            "absurd gate must trip"
        );
        assert!(
            check_parallel_scaling(&entries[..1], 1.0).is_err(),
            "no pair is an error"
        );
    }

    #[test]
    fn regression_keys_distinguish_worker_counts() {
        let cases = vec![PerfCase {
            name: "smoke_churn_2k",
            spec: PerfSpec::mix(8, 400, 200),
            seed: 7,
            threaded: false,
            compare: false,
            workers: &[1, 2],
            obs_row: false,
        }];
        let entries = run_matrix(&cases, false, &probe, |_| {});
        let doc = validate_perf_json(&perf_json(&entries)).unwrap();
        // Slowing only the 2-worker row must be caught even though the
        // 1-worker row of the same (name, transport, mode) is unchanged.
        let mut slow = entries.clone();
        let two = slow
            .iter_mut()
            .find(|e| e.workers == Some(2))
            .expect("2-worker row");
        two.run_ms = two.run_ms * 100.0 + 1000.0;
        assert!(check_regression(&doc, &slow, 2.0, 0.0).is_err());
    }

    #[test]
    fn obs_rows_pair_with_their_off_siblings_and_gate_overhead() {
        let cases = vec![PerfCase {
            name: "smoke_churn_2k",
            spec: PerfSpec::mix(8, 400, 200),
            seed: 7,
            threaded: false,
            compare: false,
            workers: &[],
            obs_row: true,
        }];
        let entries = run_matrix(&cases, false, &probe, |_| {});
        assert_eq!(entries.len(), 2, "obs-off delta + obs-on delta");
        let on = entries.iter().find(|e| e.obs).expect("obs row");
        let off = entries.iter().find(|e| !e.obs).expect("obs-off row");
        // The instrumented run must not change the experiment's outcome.
        assert_eq!(on.reclaimed, off.reclaimed);
        assert_eq!(on.verdicts, off.verdicts);
        assert_eq!(on.control_msgs, off.control_msgs);
        assert_eq!(on.control_bytes, off.control_bytes);

        let text = perf_json(&entries);
        let obs_line = text.lines().find(|l| l.contains("\"obs\": 1")).unwrap();
        assert!(obs_line.contains("control_bytes"));
        validate_perf_json(&text).expect("schema-valid");

        // Gate mechanics: identical-ish rows pass any sane ratio; an
        // absurd floor-free gate trips; a lone obs row is an error.
        check_obs_overhead(&entries, 1e9, 0.0).expect("pair present");
        let mut slow = entries.clone();
        slow.iter_mut().find(|e| e.obs).unwrap().run_ms = 1e9;
        assert!(check_obs_overhead(&slow, 1.02, 0.0).is_err());
        let lone: Vec<PerfEntry> = entries.iter().filter(|e| e.obs).cloned().collect();
        assert!(check_obs_overhead(&lone, 1.5, 0.0).is_err());
        let none: Vec<PerfEntry> = entries.iter().filter(|e| !e.obs).cloned().collect();
        assert!(check_obs_overhead(&none, 1.5, 0.0).is_err());
    }

    #[test]
    fn control_bytes_regress_against_committed_v4_rows() {
        let cases = vec![PerfCase {
            name: "smoke_churn_2k",
            spec: PerfSpec::mix(8, 400, 200),
            seed: 7,
            threaded: false,
            compare: false,
            workers: &[],
            obs_row: false,
        }];
        let entries = run_matrix(&cases, false, &probe, |_| {});
        let doc = validate_perf_json(&perf_json(&entries)).unwrap();
        check_control_bytes(&doc, &entries, 1.0).expect("identical rows cannot regress");
        let mut bloated = entries.clone();
        bloated[0].control_bytes = bloated[0].control_bytes.map(|b| b * 10 + 1);
        assert!(check_control_bytes(&doc, &bloated, 1.5).is_err());
        // Rows without a committed baseline (pre-v4 files) are skipped,
        // and skipping everything is reported as such.
        let mut unbaselined = entries.clone();
        for row in &mut unbaselined {
            row.name = "brand_new_case".to_owned();
        }
        assert!(check_control_bytes(&doc, &unbaselined, 1.5)
            .unwrap_err()
            .starts_with("no fresh row"));
    }

    #[test]
    fn allocations_regress_against_committed_rows() {
        let cases = vec![PerfCase {
            name: "smoke_churn_2k",
            spec: PerfSpec::mix(8, 400, 200),
            seed: 7,
            threaded: false,
            compare: false,
            workers: &[],
            obs_row: false,
        }];
        // A probe that advances on every call stands in for the real
        // counting allocator, so rows carry non-zero counts.
        let counter = std::cell::Cell::new(0u64);
        let probe = move || {
            counter.set(counter.get() + 1_000_000);
            (counter.get(), counter.get() * 64)
        };
        let entries = run_matrix(&cases, false, &probe, |_| {});
        let doc = validate_perf_json(&perf_json(&entries)).unwrap();
        check_allocations(&doc, &entries, 1.5, 0).expect("identical rows cannot regress");
        let mut bloated = entries.clone();
        bloated[0].allocations = bloated[0].allocations * 2 + 1;
        assert!(check_allocations(&doc, &bloated, 1.5, 0).is_err());
        // The floor exempts rows whose committed count is noise-sized.
        check_allocations(&doc, &bloated, 1.5, u64::MAX).expect("floor exempts small rows");
        // Rows without a committed baseline are skipped, and skipping
        // everything is reported as such.
        let mut unbaselined = entries.clone();
        for row in &mut unbaselined {
            row.name = "brand_new_case".to_owned();
        }
        assert!(check_allocations(&doc, &unbaselined, 1.5, 0)
            .unwrap_err()
            .starts_with("no fresh row"));
    }

    #[test]
    fn schema_violations_are_reported() {
        assert!(validate_perf_json("{}").is_err());
        assert!(
            validate_perf_json("{\"schema\": \"ggd-bench-perf/v1\", \"entries\": []}").is_err()
        );
        let missing = "{\"schema\": \"ggd-bench-perf/v1\", \"entries\": [{\"name\": \"x\"}]}";
        assert!(validate_perf_json(missing).is_err());
    }
}
