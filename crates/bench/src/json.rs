//! A minimal JSON reader for the bench harness's own artifacts.
//!
//! The offline build has no JSON library (see `vendor/README.md`); the
//! harness *writes* JSON by hand and this module reads it back — enough for
//! the `perf-smoke` CI job to validate `BENCH_perf.json` against its schema
//! and compare wall-clock numbers across runs. It parses the full JSON
//! grammar except for exotic escapes (`\uXXXX` is decoded for the BMP
//! only), which our artifacts never contain.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; our artifacts stay well within its
    /// integer-exact range).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, key-sorted.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer value, if this is a number with no fractional part.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing non-whitespace.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("non-BMP \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid utf-8"))?;
                    let ch = s.chars().next().expect("nonempty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = r#"{"a": 1, "b": [true, false, null, -2.5e1], "c": "x\ny"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        let b = v.get("b").and_then(JsonValue::as_array).unwrap();
        assert_eq!(b.len(), 4);
        assert_eq!(b[0], JsonValue::Bool(true));
        assert_eq!(b[3].as_f64(), Some(-25.0));
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x\ny"));
    }

    #[test]
    fn round_trips_the_baseline_file() {
        let entries = crate::baseline();
        let text = crate::baseline_json(&entries);
        let v = parse(&text).unwrap();
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some("ggd-bench-baseline/v1")
        );
        assert_eq!(
            v.get("entries")
                .and_then(JsonValue::as_array)
                .unwrap()
                .len(),
            entries.len()
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
        let err = parse("nope").unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}
