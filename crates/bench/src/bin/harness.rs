//! Regenerates every experiment table of EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p ggd-bench --bin harness            # all experiments
//! cargo run --release -p ggd-bench --bin harness -- e3 e6   # a subset
//! ```

use ggd_bench as bench;

fn wanted(args: &[String], id: &str) -> bool {
    args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if wanted(&args, "e1") || wanted(&args, "e2") {
        let (report, logs) = bench::experiment_paper_example();
        println!("## E1/E2 — the paper's running example (Figures 3-5, 8)");
        println!("{report}");
        println!("final per-site DK logs:\n{logs}");
    }
    if wanted(&args, "e3") {
        let rows = bench::experiment_list_collapse(&[2, 4, 8, 16, 24]);
        println!(
            "{}",
            bench::render(
                "E3 — doubly-linked list collapse (§4, Schelvis comparison; schelvis* is the analytical O(k²) packet count)",
                &rows
            )
        );
    }
    if wanted(&args, "e4") {
        let rows =
            bench::experiment_faults(&[(0.0, 0.0), (0.1, 0.0), (0.3, 0.0), (0.0, 0.3), (0.3, 0.3)]);
        println!(
            "{}",
            bench::render("E4 — safety under message loss / duplication", &rows)
        );
    }
    if wanted(&args, "e5") {
        let rows = bench::experiment_lazy_vs_eager(&[2, 4, 8, 16]);
        println!(
            "{}",
            bench::render(
                "E5 — lazy vs eager log-keeping on third-party exchanges",
                &rows
            )
        );
    }
    if wanted(&args, "e6") {
        let rows = bench::experiment_cycles(&[2, 4, 8, 12]);
        println!(
            "{}",
            bench::render("E6 — comprehensiveness: inter-site cycles", &rows)
        );
    }
    if wanted(&args, "e7") {
        let rows = bench::experiment_stalled_site(&[6, 10, 14]);
        println!(
            "{}",
            bench::render(
                "E7 — consensus bottleneck: one unrelated site stalled",
                &rows
            )
        );
    }
    if wanted(&args, "e8") {
        let rows = bench::experiment_live_population(&[1, 4, 16, 32]);
        println!(
            "{}",
            bench::render("E8 — fixed garbage, growing live population", &rows)
        );
    }
    if wanted(&args, "e9") {
        let rows = bench::experiment_parallel_scaling(&[1, 2, 4]);
        println!(
            "{}",
            bench::render(
                "E9 — parallel drive loop: outcome and wire cost per worker count",
                &rows
            )
        );
    }
    if wanted(&args, "e10") {
        println!("## E10 — per-object detection latency (obs ledger, oracle on)");
        println!("{}", bench::experiment_detection_latency());
    }
    if wanted(&args, "baseline") {
        let entries = bench::baseline();
        let json = bench::baseline_json(&entries);
        let path = "BENCH_baseline.json";
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {} baseline entries to {path}", entries.len()),
            Err(err) => eprintln!("could not write {path}: {err}"),
        }
    }
}
