//! The differential scenario explorer (see `ggd-explore`).
//!
//! ```sh
//! cargo run --release -p ggd-bench --bin explore -- --corpus 200 --seed 7
//! cargo run --release -p ggd-bench --bin explore -- --corpus 20 --self-test
//! cargo run --release -p ggd-bench --bin explore -- --corpus 200 --membership
//! ```
//!
//! `--membership` switches to the elastic-membership corpus: every triple
//! gets a join/leave/evict schedule spliced in, draws its fault plan from
//! the partition matrix (scheduled split-and-heal windows), and runs with
//! the zero-references-to-departed-sites oracle armed.
//!
//! `--trace` re-runs every failing triple's shrunk form with full
//! observability on and prints its JSONL event timeline (schema
//! `ggd-obs-trace/v1`) next to the reproducer — replay determinism makes
//! the traced run the same run that failed. `--validate-traces` instead
//! traces the first `--corpus` classic triples and schema-validates every
//! timeline (the CI obs-smoke gate), running no differential checks.
//!
//! Exit code 0 when the corpus ran clean (violating triples: 0, and —
//! under `--strict` — no divergences either); 1 otherwise, with every
//! failing triple shrunk and printed as a paste-ready test snippet. In
//! `--self-test` mode the expectation flips: the deliberately sabotaged
//! causal collector *must* be caught, so a clean corpus exits 1.

use ggd_explore::{corpus_triple, explore, trace_triple, ExplorerConfig, RunMode};
use ggd_obs::validate_jsonl;

fn parse_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_u64(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Parses a corpus size: out-of-range or zero values are rejected (falling
/// back to the default) rather than silently truncated — a truncated-to-0
/// corpus would make the CI oracle "pass" having verified nothing.
fn parse_corpus(args: &[String], name: &str) -> Option<u32> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&corpus| corpus > 0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let self_test = parse_flag(&args, "--self-test");
    let trace = parse_flag(&args, "--trace");
    let validate_traces = parse_flag(&args, "--validate-traces");
    let config = ExplorerConfig {
        corpus: parse_corpus(&args, "--corpus").unwrap_or(200),
        seed: parse_u64(&args, "--seed").unwrap_or(7),
        strict: parse_flag(&args, "--strict"),
        crashes: parse_flag(&args, "--crashes"),
        membership: parse_flag(&args, "--membership"),
        mode: if self_test {
            RunMode::SabotagedCausal { arm_after: 3 }
        } else {
            RunMode::Standard
        },
        ..ExplorerConfig::default()
    };

    if validate_traces {
        println!(
            "## ggd-explore — trace-schema validation (corpus={}, seed={})",
            config.corpus, config.seed
        );
        let mut event_lines = 0usize;
        for index in 0..config.corpus {
            let (_, triple) = corpus_triple(config.seed, index, &config.weights);
            let timeline = trace_triple(&triple);
            match validate_jsonl(&timeline) {
                Ok(lines) => event_lines += lines,
                Err(err) => {
                    println!("triple #{index}: INVALID trace — {err}");
                    std::process::exit(1);
                }
            }
        }
        println!(
            "{} traces schema-valid ({event_lines} event/object lines)",
            config.corpus
        );
        return;
    }

    println!(
        "## ggd-explore — differential corpus (corpus={}, seed={}{}{}{}{})",
        config.corpus,
        config.seed,
        if config.strict { ", strict" } else { "" },
        if config.crashes {
            ", CRASH MATRIX + durability"
        } else {
            ""
        },
        if config.membership {
            ", MEMBERSHIP + PARTITION MATRIX + durability"
        } else {
            ""
        },
        if self_test { ", SELF-TEST" } else { "" },
    );
    let exploration = explore(&config);
    println!("{}", exploration.stats);

    for failure in &exploration.failures {
        println!(
            "\n### triple #{} failed ({}), shrunk to {} ops over {} sites on plan `{}`:",
            failure.index,
            failure.kind,
            failure.shrunk.op_count(),
            failure.shrunk.scenario.site_count(),
            failure.shrunk.fault.name,
        );
        for f in &failure.failures {
            println!("  - {f:?}");
        }
        println!("\n{}", failure.reproducer);
        if trace {
            let timeline = trace_triple(&failure.shrunk);
            match validate_jsonl(&timeline) {
                Ok(_) => println!("event timeline of the shrunk triple:\n{timeline}"),
                Err(err) => println!("event timeline INVALID ({err}):\n{timeline}"),
            }
        }
    }

    if self_test {
        // The sabotaged collector must be detected and shrink to a tiny
        // reproducer, proving the oracle and the shrinker actually work.
        let caught = exploration.stats.violating_triples > 0;
        let tiny = exploration
            .failures
            .iter()
            .any(|f| f.kind == "safety" && f.shrunk.op_count() <= 10);
        if caught && tiny {
            println!("\nself-test OK: unsafe sweep caught and shrunk to ≤ 10 ops");
        } else {
            println!(
                "\nself-test FAILED: caught={caught} tiny={tiny} — the differential oracle \
                 or the shrinker is broken"
            );
            std::process::exit(1);
        }
        return;
    }

    if exploration.stats.violating_triples > 0
        || (config.strict && !exploration.failures.is_empty())
    {
        std::process::exit(1);
    }
}
