//! The differential scenario explorer (see `ggd-explore`).
//!
//! ```sh
//! cargo run --release -p ggd-bench --bin explore -- --corpus 200 --seed 7
//! cargo run --release -p ggd-bench --bin explore -- --corpus 20 --self-test
//! cargo run --release -p ggd-bench --bin explore -- --corpus 200 --membership
//! ```
//!
//! `--membership` switches to the elastic-membership corpus: every triple
//! gets a join/leave/evict schedule spliced in, draws its fault plan from
//! the partition matrix (scheduled split-and-heal windows), and runs with
//! the zero-references-to-departed-sites oracle armed.
//!
//! Exit code 0 when the corpus ran clean (violating triples: 0, and —
//! under `--strict` — no divergences either); 1 otherwise, with every
//! failing triple shrunk and printed as a paste-ready test snippet. In
//! `--self-test` mode the expectation flips: the deliberately sabotaged
//! causal collector *must* be caught, so a clean corpus exits 1.

use ggd_explore::{explore, ExplorerConfig, RunMode};

fn parse_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_u64(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Parses a corpus size: out-of-range or zero values are rejected (falling
/// back to the default) rather than silently truncated — a truncated-to-0
/// corpus would make the CI oracle "pass" having verified nothing.
fn parse_corpus(args: &[String], name: &str) -> Option<u32> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&corpus| corpus > 0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let self_test = parse_flag(&args, "--self-test");
    let config = ExplorerConfig {
        corpus: parse_corpus(&args, "--corpus").unwrap_or(200),
        seed: parse_u64(&args, "--seed").unwrap_or(7),
        strict: parse_flag(&args, "--strict"),
        crashes: parse_flag(&args, "--crashes"),
        membership: parse_flag(&args, "--membership"),
        mode: if self_test {
            RunMode::SabotagedCausal { arm_after: 3 }
        } else {
            RunMode::Standard
        },
        ..ExplorerConfig::default()
    };

    println!(
        "## ggd-explore — differential corpus (corpus={}, seed={}{}{}{}{})",
        config.corpus,
        config.seed,
        if config.strict { ", strict" } else { "" },
        if config.crashes {
            ", CRASH MATRIX + durability"
        } else {
            ""
        },
        if config.membership {
            ", MEMBERSHIP + PARTITION MATRIX + durability"
        } else {
            ""
        },
        if self_test { ", SELF-TEST" } else { "" },
    );
    let exploration = explore(&config);
    println!("{}", exploration.stats);

    for failure in &exploration.failures {
        println!(
            "\n### triple #{} failed ({}), shrunk to {} ops over {} sites on plan `{}`:",
            failure.index,
            failure.kind,
            failure.shrunk.op_count(),
            failure.shrunk.scenario.site_count(),
            failure.shrunk.fault.name,
        );
        for f in &failure.failures {
            println!("  - {f:?}");
        }
        println!("\n{}", failure.reproducer);
    }

    if self_test {
        // The sabotaged collector must be detected and shrink to a tiny
        // reproducer, proving the oracle and the shrinker actually work.
        let caught = exploration.stats.violating_triples > 0;
        let tiny = exploration
            .failures
            .iter()
            .any(|f| f.kind == "safety" && f.shrunk.op_count() <= 10);
        if caught && tiny {
            println!("\nself-test OK: unsafe sweep caught and shrunk to ≤ 10 ops");
        } else {
            println!(
                "\nself-test FAILED: caught={caught} tiny={tiny} — the differential oracle \
                 or the shrinker is broken"
            );
            std::process::exit(1);
        }
        return;
    }

    if exploration.stats.violating_triples > 0
        || (config.strict && !exploration.failures.is_empty())
    {
        std::process::exit(1);
    }
}
