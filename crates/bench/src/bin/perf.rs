//! The wall-clock perf suite (see EXPERIMENTS.md, "Perf suite").
//!
//! ```sh
//! cargo run --release -p ggd-bench --bin perf                 # full matrix -> BENCH_perf.json
//! cargo run --release -p ggd-bench --bin perf -- --smoke      # reduced CI matrix
//! cargo run --release -p ggd-bench --bin perf -- --smoke --check BENCH_perf.json
//! cargo run --release -p ggd-bench --bin perf -- --no-compare # skip the full-rescan baseline
//! cargo run --release -p ggd-bench --bin perf -- --case churn_100k --no-compare
//! ```
//!
//! `--case SUBSTR` keeps only matrix cases whose name contains SUBSTR
//! (e.g. to re-measure one case's observability overhead in isolation).
//! `--obs-overhead` runs only the obs-off/obs-on sim delta pair of each
//! obs-tagged case — the cheap way to re-measure the enabled-path cost.
//!
//! `--check FILE` parses FILE against the `ggd-bench-perf/v5` schema and
//! fails (exit 1) when any fresh row is more than 2x slower than the
//! committed row of the same `(name, transport, mode, workers, obs)`,
//! when a row's `control_bytes` or `allocations` exceeds 1.5x its
//! committed baseline, or
//! when an observability-enabled row runs more than 1.5x its obs-off
//! sibling — the CI regression gates. Every run also executes the recovery matrix (WAL
//! append overhead + full-cluster replay, `mode: "wal"` / `"replay"`);
//! `--recovery-only` runs just that group and writes
//! `BENCH_perf_recovery.json`. On hosts with ≥ 2 CPUs, `--check` also
//! enforces the parallel scaling sanity gate (2-worker churn ≥ 1.2x
//! faster than 1-worker); on single-core hosts the gate is skipped with a
//! loud notice, since serialized workers cannot scale.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ggd_bench::perf::{
    check_allocations, check_control_bytes, check_obs_overhead, check_parallel_scaling,
    check_regression, check_speedup, perf_json, perf_matrix, recovery_matrix, run_matrix,
    run_recovery_matrix, validate_perf_json,
};

/// A [`System`]-backed allocator that counts allocations and bytes, so the
/// perf rows can report allocation pressure alongside wall clock. The
/// counters are monotone; phases measure by differencing.
struct CountingAllocator {
    allocations: AtomicU64,
    bytes: AtomicU64,
}

// `GlobalAlloc` is an unsafe trait; this is the one sanctioned exception to
// the workspace-wide `unsafe_code` ban (see crates/bench/Cargo.toml). The
// implementation only forwards to `System` and bumps two atomics.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator {
    allocations: AtomicU64::new(0),
    bytes: AtomicU64::new(0),
};

fn alloc_stats() -> (u64, u64) {
    (
        ALLOCATOR.allocations.load(Ordering::Relaxed),
        ALLOCATOR.bytes.load(Ordering::Relaxed),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let compare = !args.iter().any(|a| a == "--no-compare");
    let check: Option<&str> = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let recovery_only_flag = args.iter().any(|a| a == "--recovery-only");
    let case_filter: Option<&str> = args
        .iter()
        .position(|a| a == "--case")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let obs_overhead_only = args.iter().any(|a| a == "--obs-overhead");
    let out_path = if recovery_only_flag {
        "BENCH_perf_recovery.json"
    } else if smoke {
        "BENCH_perf_smoke.json"
    } else if case_filter.is_some() {
        // A filtered run is a partial matrix: never clobber the committed
        // full-matrix document with it.
        "BENCH_perf_case.json"
    } else {
        "BENCH_perf.json"
    };

    let recovery_only = recovery_only_flag;

    let progress = |entry: &ggd_bench::perf::PerfEntry| {
        eprintln!(
            "  {:<24} {:<9} {:<6} w={:<2} run={:>9.1}ms ops/s={:>10.0} control={:>8} ctl_bytes={:>9} peak_queued={:>9}B allocs={}",
            entry.name,
            entry.transport,
            entry.mode,
            entry.workers.map_or_else(|| "-".into(), |w| w.to_string()),
            entry.run_ms,
            entry.ops_per_sec,
            entry.control_msgs,
            entry
                .control_bytes
                .map_or_else(|| "-".into(), |b| b.to_string()),
            entry.peak_queued_bytes,
            entry.allocations,
        );
    };

    let mut cases = perf_matrix(smoke);
    let mut recovery_cases = recovery_matrix(smoke);
    if let Some(filter) = case_filter {
        cases.retain(|c| c.name.contains(filter));
        recovery_cases.retain(|c| c.name.contains(filter));
    }
    if obs_overhead_only {
        // Strip everything except the obs-off/obs-on sim delta pair, so
        // repeated invocations measure the observability overhead without
        // paying for the rest of the matrix.
        cases.retain(|c| c.obs_row);
        for case in &mut cases {
            case.threaded = false;
            case.compare = false;
            case.workers = &[];
        }
        recovery_cases.clear();
    }
    eprintln!(
        "perf suite: {} case(s) + {} recovery case(s), compare={compare}, smoke={smoke}{}",
        cases.len(),
        recovery_cases.len(),
        if recovery_only { ", recovery-only" } else { "" },
    );
    let mut entries = if recovery_only {
        Vec::new()
    } else {
        run_matrix(&cases, compare, &alloc_stats, progress)
    };
    entries.extend(run_recovery_matrix(&recovery_cases, &alloc_stats, progress));

    for entry in &entries {
        if let Some(speedup) = entry.speedup_vs_full {
            eprintln!(
                "  {:<24} {:<9} delta pipeline speedup vs full rescan: {speedup:.2}x",
                entry.name, entry.transport
            );
        }
    }

    let document = perf_json(&entries);
    validate_perf_json(&document).expect("freshly emitted document must be schema-valid");
    match std::fs::write(out_path, &document) {
        Ok(()) => eprintln!("wrote {} entries to {out_path}", entries.len()),
        Err(err) => {
            eprintln!("could not write {out_path}: {err}");
            std::process::exit(1);
        }
    }

    if let Some(committed_path) = check {
        let committed = match std::fs::read_to_string(committed_path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("could not read {committed_path}: {err}");
                std::process::exit(1);
            }
        };
        let committed = match validate_perf_json(&committed) {
            Ok(doc) => doc,
            Err(err) => {
                eprintln!("{committed_path} failed schema validation: {err}");
                std::process::exit(1);
            }
        };
        // 2x wall-clock tolerance, ignoring committed rows under 50ms:
        // CI hardware differs from the machine the baseline was committed
        // on, and tens-of-milliseconds rows are pure scheduling noise.
        match check_regression(&committed, &entries, 2.0, 50.0) {
            Ok(()) => eprintln!("regression check against {committed_path}: ok"),
            Err(err) => {
                eprintln!("PERF REGRESSION vs {committed_path}: {err}");
                std::process::exit(1);
            }
        }
        // Wire-volume gate (schema v4): control bytes are deterministic on
        // the sim transport, so the tolerance only absorbs the parallel
        // rows' interleaving-dependent propagation. Skipped while the
        // committed file predates the v4 columns.
        if !recovery_only {
            match check_control_bytes(&committed, &entries, 1.5) {
                Ok(()) => eprintln!("control_bytes regression check: ok"),
                Err(err) if err.starts_with("no fresh row") => {
                    eprintln!("control_bytes check SKIPPED: {err}");
                }
                Err(err) => {
                    eprintln!("PERF REGRESSION (control bytes): {err}");
                    std::process::exit(1);
                }
            }
        }
        // Allocation-count gate (schema v5): counts are machine-speed
        // independent, so a 1.5x tolerance catches reintroduced per-op
        // allocations the wall-clock gate would absorb. The floor skips
        // rows dominated by one-time lazy initialization.
        if !recovery_only {
            match check_allocations(&committed, &entries, 1.5, 100_000) {
                Ok(()) => eprintln!("allocations regression check: ok"),
                Err(err) if err.starts_with("no fresh row") => {
                    eprintln!("allocations check SKIPPED: {err}");
                }
                Err(err) => {
                    eprintln!("PERF REGRESSION (allocations): {err}");
                    std::process::exit(1);
                }
            }
        }
        // Observability overhead: the committed full matrix holds the
        // tight ratio at the 100k scale (see EXPERIMENTS.md); smoke rows
        // run tens of milliseconds, so CI only gates against gross
        // blowups (1.5x) above the 20ms noise floor.
        if !recovery_only {
            match check_obs_overhead(&entries, 1.5, 20.0) {
                Ok(()) => eprintln!("observability overhead check: ok"),
                Err(err) => {
                    eprintln!("PERF REGRESSION (obs overhead): {err}");
                    std::process::exit(1);
                }
            }
        }
        // The machine-independent gate: the delta pipeline must keep a
        // healthy lead over the full-rescan pipeline *on this machine*.
        if compare && !recovery_only {
            match check_speedup(&entries, 1.5) {
                Ok(()) => eprintln!("delta-vs-full speedup check: ok"),
                Err(err) => {
                    eprintln!("PERF REGRESSION (speedup): {err}");
                    std::process::exit(1);
                }
            }
        }
        // Parallel scaling sanity: only meaningful where the workers can
        // actually run in parallel. On a single-core host the OS
        // serializes them and the ratio is ~1.0 by construction.
        if !recovery_only {
            let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            if cpus >= 2 {
                match check_parallel_scaling(&entries, 1.2) {
                    Ok(()) => eprintln!("parallel scaling check (>=1.2x at 2 workers): ok"),
                    Err(err) => {
                        eprintln!("PERF REGRESSION (parallel scaling): {err}");
                        std::process::exit(1);
                    }
                }
            } else {
                eprintln!(
                    "parallel scaling check SKIPPED: only {cpus} CPU available — \
                     workers serialize, the >=1.2x gate cannot be measured here"
                );
            }
        }
    }
}
