//! Experiment harness regenerating every figure and quantitative claim of
//! the paper (see DESIGN.md §5 and EXPERIMENTS.md).
//!
//! Each `run_*` function returns printable rows so that the same code backs
//! the `harness` binary, the Criterion benchmarks and the integration tests.

pub mod json;
pub mod perf;

use std::fmt::Write as _;

use ggd_mutator::{workloads, Scenario};
use ggd_net::FaultPlan;
use ggd_sim::{
    CausalCollector, Cluster, ClusterConfig, Collector, ParallelCluster, RefListingCollector,
    RunReport, TracingCollector,
};
use ggd_types::SiteId;

/// One row of an experiment table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Independent-variable description (e.g. `k=8` or `p=0.3`).
    pub x: String,
    /// Collector name.
    pub collector: String,
    /// Named measurements, in display order.
    pub values: Vec<(&'static str, f64)>,
}

impl Row {
    fn from_report(x: impl Into<String>, report: &RunReport) -> Row {
        Row {
            x: x.into(),
            collector: report.collector.clone(),
            values: vec![
                ("control_msgs", report.control_messages() as f64),
                ("mutator_msgs", report.mutator_messages() as f64),
                ("reclaimed", report.reclaimed as f64),
                ("residual", report.residual_garbage as f64),
                ("violations", report.safety_violations as f64),
                (
                    "latency",
                    report.detection_latency().map(|l| l as f64).unwrap_or(-1.0),
                ),
            ],
        }
    }
}

/// Renders rows as an aligned text table. Cells are written straight into
/// one output buffer with `write!` — no per-cell `String` allocations.
pub fn render(title: &str, rows: &[Row]) -> String {
    let mut out = String::with_capacity(64 + rows.len() * 128);
    let _ = writeln!(out, "## {title}");
    if rows.is_empty() {
        out.push_str("(no rows)\n");
        return out;
    }
    let _ = write!(out, "{:<14} {:<12}", "x", "collector");
    for (name, _) in &rows[0].values {
        let _ = write!(out, " {name:>13}");
    }
    out.push('\n');
    for row in rows {
        let _ = write!(out, "{:<14} {:<12}", row.x, row.collector);
        for (_, value) in &row.values {
            let _ = write!(out, " {value:>13.1}");
        }
        out.push('\n');
    }
    out
}

fn run_with<C: Collector>(
    scenario: &Scenario,
    config: ClusterConfig,
    factory: impl Fn(SiteId) -> C + 'static,
) -> RunReport {
    let mut cluster = Cluster::from_scenario(scenario, config, factory);
    cluster.run(scenario)
}

/// Runs a scenario under the causal collector with default configuration.
pub fn run_causal(scenario: &Scenario) -> RunReport {
    run_with(scenario, ClusterConfig::default(), CausalCollector::new)
}

/// E1/E2 — the paper's running example (Figures 3–5 and 8): the report plus
/// the final per-site `DK` logs.
pub fn experiment_paper_example() -> (RunReport, String) {
    let scenario = workloads::paper_example();
    let mut cluster =
        Cluster::from_scenario(&scenario, ClusterConfig::default(), CausalCollector::new);
    let report = cluster.run(&scenario);
    let mut logs = String::new();
    for i in 0..scenario.site_count() {
        let site = SiteId::new(i);
        logs.push_str(&format!(
            "--- {site}\n{}",
            cluster.collector(site).engine().log()
        ));
    }
    (report, logs)
}

/// E3 — message complexity of collecting a disconnected doubly-linked list
/// of `k` elements (the §4 Schelvis comparison), causal vs tracing, plus the
/// analytical O(k²) packet count Schelvis' depth-first scheme would need.
pub fn experiment_list_collapse(ks: &[u32]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &k in ks {
        let scenario = workloads::doubly_linked_list(k);
        let report = run_causal(&scenario);
        rows.push(Row::from_report(format!("k={k}"), &report));
        let report = run_with(
            &scenario,
            ClusterConfig::default(),
            TracingCollector::factory(scenario.site_count()),
        );
        rows.push(Row::from_report(format!("k={k}"), &report));
        rows.push(Row {
            x: format!("k={k}"),
            collector: "schelvis*".into(),
            values: vec![("control_msgs", f64::from(k) * f64::from(k))],
        });
    }
    rows
}

/// E4 — robustness: safety and residual garbage under message loss and
/// duplication.
pub fn experiment_faults(probabilities: &[(f64, f64)]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &(drop_p, dup_p) in probabilities {
        let scenario = workloads::random_churn(4, 120, 42);
        let mut faults = FaultPlan::new();
        if drop_p > 0.0 {
            faults = faults.with_drop_probability(drop_p);
        }
        if dup_p > 0.0 {
            faults = faults.with_duplicate_probability(dup_p);
        }
        let config = ClusterConfig {
            faults,
            seed: 9,
            ..ClusterConfig::default()
        };
        let report = run_with(&scenario, config, CausalCollector::new);
        rows.push(Row::from_report(format!("p={drop_p}/{dup_p}"), &report));
    }
    rows
}

/// E5 — log-keeping overhead on a third-party-exchange workload: the lazy
/// mechanism adds no control messages per exchange, eager reference listing
/// does.
pub fn experiment_lazy_vs_eager(spokes: &[u32]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in spokes {
        let scenario = workloads::third_party_exchanges(n);
        let report = run_causal(&scenario);
        rows.push(Row::from_report(format!("spokes={n}"), &report));
        let report = run_with(
            &scenario,
            ClusterConfig::default(),
            RefListingCollector::new,
        );
        rows.push(Row::from_report(format!("spokes={n}"), &report));
    }
    rows
}

/// E6 — comprehensiveness: inter-site cyclic garbage under each collector.
pub fn experiment_cycles(sizes: &[u32]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &k in sizes {
        let scenario = workloads::ring(k);
        let report = run_causal(&scenario);
        rows.push(Row::from_report(format!("ring={k}"), &report));
        let report = run_with(
            &scenario,
            ClusterConfig::default(),
            TracingCollector::factory(scenario.site_count()),
        );
        rows.push(Row::from_report(format!("ring={k}"), &report));
        let report = run_with(
            &scenario,
            ClusterConfig::default(),
            RefListingCollector::new,
        );
        rows.push(Row::from_report(format!("ring={k}"), &report));
    }
    rows
}

/// E7 — the consensus bottleneck: a garbage island touching 3 of N sites,
/// with one unrelated site stalled. The causal collector reclaims the island
/// anyway; the tracing collector cannot reclaim anything until the stalled
/// site resumes.
pub fn experiment_stalled_site(total_sites: &[u32]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in total_sites {
        let scenario = workloads::garbage_island(n, 3, 2);
        let stalled = SiteId::new(n - 1);
        let config = ClusterConfig {
            faults: FaultPlan::new().with_stalled_site(stalled),
            ..ClusterConfig::default()
        };
        let report = run_with(&scenario, config, CausalCollector::new);
        rows.push(Row::from_report(format!("sites={n}"), &report));
        let config = ClusterConfig {
            faults: FaultPlan::new().with_stalled_site(stalled),
            ..ClusterConfig::default()
        };
        let report = run_with(&scenario, config, TracingCollector::factory(n));
        rows.push(Row::from_report(format!("sites={n}"), &report));
    }
    rows
}

/// E8 — message complexity scales with the amount of garbage, not with the
/// amount of live data: fixed 3-site garbage island, growing live heap.
pub fn experiment_live_population(live_per_site: &[u32]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &live in live_per_site {
        let scenario = workloads::garbage_island(8, 3, live);
        let report = run_causal(&scenario);
        rows.push(Row::from_report(format!("live={live}"), &report));
        let report = run_with(
            &scenario,
            ClusterConfig::default(),
            TracingCollector::factory(8),
        );
        rows.push(Row::from_report(format!("live={live}"), &report));
    }
    rows
}

/// E9 — the parallel drive loop: one churn workload run at each worker
/// count. The `workers` and `control_bytes` columns are the new schema-v3
/// dimensions: thread count and *real encoded* control-plane wire bytes
/// (the sequential rows of E3–E8 report message counts; frames only exist
/// on the threaded and parallel paths). Wall clock is deliberately absent —
/// table rows are for the deterministic outcome dimensions; timing lives in
/// `BENCH_perf.json`.
pub fn experiment_parallel_scaling(workers: &[u32]) -> Vec<Row> {
    let scenario = workloads::random_churn(8, 200, 21);
    let mut rows = Vec::new();
    for &w in workers {
        let config = ClusterConfig {
            workers: w,
            safety_oracle: false,
            ..ClusterConfig::default()
        };
        let (report, _cluster) =
            ParallelCluster::run_seeded(&scenario, config, CausalCollector::new);
        rows.push(Row {
            x: format!("workers={w}"),
            collector: report.collector.clone(),
            values: vec![
                ("workers", f64::from(w)),
                ("control_msgs", report.control_messages() as f64),
                ("control_bytes", report.net.control_bytes_sent() as f64),
                ("mutator_bytes", report.net.mutator_bytes_sent() as f64),
                ("reclaimed", report.reclaimed as f64),
                ("residual", report.residual_garbage as f64),
            ],
        });
    }
    rows
}

/// E10 — per-object detection latency over the E-series workloads: each
/// scenario runs sequentially with full observability and the safety
/// oracle on, so the lifecycle ledger records `unreachable → detected`
/// per object. Returns the rendered per-scenario means plus the merged
/// fixed-bucket histogram (logical steps; see DESIGN.md §10).
pub fn experiment_detection_latency() -> String {
    let scenarios: Vec<(&str, Scenario, FaultPlan)> = vec![
        (
            "paper_example",
            workloads::paper_example(),
            FaultPlan::new(),
        ),
        (
            "list_k8",
            workloads::doubly_linked_list(8),
            FaultPlan::new(),
        ),
        (
            "exchanges_n8",
            workloads::third_party_exchanges(8),
            FaultPlan::new(),
        ),
        ("ring_k8", workloads::ring(8), FaultPlan::new()),
        (
            "island_8x3",
            workloads::garbage_island(8, 3, 4),
            FaultPlan::new(),
        ),
        // The delayed-detection case: a split-and-heal window holds the
        // island's verdicts back until the partition heals, so the
        // unreachable→detected latency is measured in scenario steps > 0.
        (
            "island_split",
            workloads::garbage_island(8, 3, 4),
            FaultPlan::new().with_split(4, 5, 40),
        ),
        (
            "churn_8x400",
            workloads::random_churn(8, 400, 21),
            FaultPlan::new(),
        ),
    ];
    let mut merged = ggd_obs::Histogram::default();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>10} {:>12} {:>12}",
        "scenario", "tracked", "detected", "mean_steps", "max_steps"
    );
    for (name, scenario, faults) in &scenarios {
        let config = ClusterConfig {
            obs: ggd_obs::ObsConfig::enabled(),
            faults: faults.clone(),
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::from_scenario(scenario, config, CausalCollector::new);
        cluster.run(scenario);
        let report = cluster.obs_report();
        let detection = report.detection_histogram();
        let detected: u64 = report
            .ledger()
            .iter()
            .filter(|(_, l)| l.detected.is_some())
            .count() as u64;
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>10} {:>12.1} {:>12}",
            name,
            report.ledger().len(),
            detected,
            detection.mean(),
            detection.max,
        );
        merged.absorb(detection);
    }
    let _ = writeln!(
        out,
        "\nmerged unreachable→detected histogram (logical steps):\n{}",
        merged.render()
    );
    out
}

/// One entry of the performance baseline (see [`baseline`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Scenario identifier, e.g. `"paper_example"`.
    pub scenario: String,
    /// Collector name.
    pub collector: String,
    /// Control (collector overhead) messages sent.
    pub control_msgs: u64,
    /// Mutator (application) messages sent.
    pub mutator_msgs: u64,
    /// Objects reclaimed.
    pub reclaimed: u64,
    /// Residual garbage at quiescence.
    pub residual: u64,
    /// Safety violations (must be zero).
    pub violations: u64,
    /// Detection latency in transport ticks, if GGD triggered.
    pub detection_latency: Option<u64>,
}

impl BaselineEntry {
    fn new(scenario: &str, report: &RunReport) -> BaselineEntry {
        BaselineEntry {
            scenario: scenario.to_owned(),
            collector: report.collector.clone(),
            control_msgs: report.control_messages(),
            mutator_msgs: report.mutator_messages(),
            reclaimed: report.reclaimed,
            residual: report.residual_garbage,
            violations: report.safety_violations,
            detection_latency: report.detection_latency(),
        }
    }
}

/// Runs the canonical scenario set under every applicable collector and
/// returns per-scenario control-message counts and detection latencies —
/// the numbers future PRs diff against for perf-trajectory tracking
/// (`BENCH_baseline.json`).
pub fn baseline() -> Vec<BaselineEntry> {
    let mut entries = Vec::new();
    let mut push = |scenario: &str, report: &RunReport| {
        entries.push(BaselineEntry::new(scenario, report));
    };

    let paper = workloads::paper_example();
    push("paper_example", &run_causal(&paper));
    push(
        "paper_example",
        &run_with(
            &paper,
            ClusterConfig::default(),
            TracingCollector::factory(paper.site_count()),
        ),
    );
    push(
        "paper_example",
        &run_with(&paper, ClusterConfig::default(), RefListingCollector::new),
    );

    let list = workloads::doubly_linked_list(8);
    push("list_collapse_k8", &run_causal(&list));
    push(
        "list_collapse_k8",
        &run_with(
            &list,
            ClusterConfig::default(),
            TracingCollector::factory(list.site_count()),
        ),
    );

    let ring = workloads::ring(8);
    push("ring_k8", &run_causal(&ring));

    let island = workloads::garbage_island(8, 3, 2);
    push("garbage_island_8_3_2", &run_causal(&island));

    let spokes = workloads::third_party_exchanges(8);
    push("third_party_8", &run_causal(&spokes));
    push(
        "third_party_8",
        &run_with(&spokes, ClusterConfig::default(), RefListingCollector::new),
    );

    entries
}

/// Renders baseline entries as a JSON document (hand-rolled: the offline
/// build has no JSON library — see vendor/README.md).
pub fn baseline_json(entries: &[BaselineEntry]) -> String {
    let mut out = String::from("{\n  \"schema\": \"ggd-bench-baseline/v1\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"scenario\": \"{}\", \"collector\": \"{}\", \"control_msgs\": {}, \
             \"mutator_msgs\": {}, \"reclaimed\": {}, \"residual\": {}, \"violations\": {}, \
             \"detection_latency\": ",
            e.scenario,
            e.collector,
            e.control_msgs,
            e.mutator_msgs,
            e.reclaimed,
            e.residual,
            e.violations,
        );
        match e.detection_latency {
            Some(latency) => {
                let _ = write!(out, "{latency}");
            }
            None => out.push_str("null"),
        }
        let _ = writeln!(out, "}}{}", if i + 1 < entries.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_covers_every_scenario_safely() {
        let entries = baseline();
        assert!(entries.len() >= 8);
        for e in &entries {
            assert_eq!(
                e.violations, 0,
                "{}/{} violated safety",
                e.scenario, e.collector
            );
        }
        let causal_paper = entries
            .iter()
            .find(|e| e.scenario == "paper_example" && e.collector == "causal")
            .expect("causal paper-example entry");
        assert_eq!(causal_paper.mutator_msgs, 6);
        assert_eq!(causal_paper.control_msgs, 12);
        assert_eq!(causal_paper.detection_latency, Some(5));
    }

    #[test]
    fn baseline_json_is_well_formed() {
        let entries = baseline();
        let json = baseline_json(&entries);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"scenario\"").count(), entries.len());
        assert!(json.contains("ggd-bench-baseline/v1"));
    }

    #[test]
    fn paper_example_experiment_is_clean() {
        let (report, logs) = experiment_paper_example();
        assert_eq!(report.safety_violations, 0);
        assert_eq!(report.residual_garbage, 0);
        assert!(logs.contains("DK["));
    }

    #[test]
    fn tables_render() {
        let rows = experiment_cycles(&[3]);
        let text = render("cycles", &rows);
        assert!(text.contains("causal"));
        assert!(text.contains("reflisting"));
    }

    #[test]
    fn causal_beats_reflisting_on_cycles() {
        let rows = experiment_cycles(&[4]);
        let causal: f64 = rows
            .iter()
            .find(|r| r.collector == "causal")
            .unwrap()
            .values
            .iter()
            .find(|(n, _)| *n == "residual")
            .unwrap()
            .1;
        let reflist: f64 = rows
            .iter()
            .find(|r| r.collector == "reflisting")
            .unwrap()
            .values
            .iter()
            .find(|(n, _)| *n == "residual")
            .unwrap()
            .1;
        assert_eq!(causal, 0.0);
        assert!(reflist > 0.0);
    }
}
