//! Criterion micro- and macro-benchmarks:
//!
//! * dependency-vector merge and closure reconstruction (the per-message
//!   cost of the causal engine),
//! * the paper-example scenario end to end,
//! * the E3 list-collapse scenario for a representative k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ggd_bench::run_causal;
use ggd_causal::DkLog;
use ggd_mutator::workloads;
use ggd_types::{DependencyVector, Timestamp, VertexId};

fn vector_of(size: usize, offset: u64) -> DependencyVector {
    (0..size)
        .map(|i| {
            (
                VertexId::object(i as u32, 1),
                Timestamp::created(i as u64 + offset),
            )
        })
        .collect()
}

fn bench_vector_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector");
    for size in [8usize, 64, 256] {
        let a = vector_of(size, 1);
        let b = vector_of(size, 2);
        group.bench_with_input(BenchmarkId::new("merge", size), &size, |bencher, _| {
            bencher.iter(|| a.merged_with(&b));
        });
        // The in-place path the engine hits: same key set, newer stamps —
        // no reallocation, a two-pointer walk over the sorted entries.
        group.bench_with_input(
            BenchmarkId::new("merge_in_place", size),
            &size,
            |bencher, _| {
                bencher.iter(|| {
                    let mut target = a.clone();
                    target.merge(&b);
                    target
                });
            },
        );
        // Disjoint key sets: the rebuild path (one exact-size allocation).
        let disjoint: DependencyVector = (0..size)
            .map(|i| {
                (
                    VertexId::object(1000 + i as u32, 1),
                    Timestamp::created(i as u64 + 1),
                )
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("merge_disjoint", size),
            &size,
            |bencher, _| {
                bencher.iter(|| {
                    let mut target = a.clone();
                    target.merge(&disjoint);
                    target
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("dominates", size), &size, |bencher, _| {
            bencher.iter(|| b.dominates(&a));
        });
        group.bench_with_input(
            BenchmarkId::new("causal_order", size),
            &size,
            |bencher, _| {
                bencher.iter(|| a.causal_order(&b));
            },
        );
    }
    // The engine's commonest vectors fit the inline buffer: no allocation
    // at all for construct + merge at this size.
    group.bench_function("singleton_merge_inline", |bencher| {
        let single = DependencyVector::singleton(VertexId::object(1, 1), Timestamp::created(3));
        bencher.iter(|| {
            let mut v = DependencyVector::singleton(VertexId::object(2, 1), Timestamp::created(1));
            v.merge(&single);
            v
        });
    });
    group.finish();
}

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure");
    for chain in [8u64, 64, 256] {
        let mut log = DkLog::new();
        for i in 0..chain {
            let this = VertexId::object(i as u32, 1);
            let next = VertexId::object(i as u32 + 1, 1);
            log.row_mut(next)
                .vector
                .set(this, Timestamp::created(i + 1));
            log.row_mut(this)
                .vector
                .set(this, Timestamp::created(i + 1));
        }
        let subject = VertexId::object(chain as u32, 1);
        group.bench_with_input(BenchmarkId::new("chain", chain), &chain, |bencher, _| {
            bencher.iter(|| log.closure(subject));
        });
    }
    group.finish();
}

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario");
    group.sample_size(10);
    let paper = workloads::paper_example();
    group.bench_function("paper_example", |bencher| {
        bencher.iter(|| run_causal(&paper));
    });
    let list = workloads::doubly_linked_list(8);
    group.bench_function("list_collapse_k8", |bencher| {
        bencher.iter(|| run_causal(&list));
    });
    let ring = workloads::ring(8);
    group.bench_function("ring_collapse_k8", |bencher| {
        bencher.iter(|| run_causal(&ring));
    });
    group.finish();
}

criterion_group!(benches, bench_vector_ops, bench_closure, bench_scenarios);
criterion_main!(benches);
