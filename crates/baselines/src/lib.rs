//! Baseline global-garbage-detection engines the paper argues against.
//!
//! Two families are implemented, so that every comparative claim of the
//! paper can be measured rather than asserted:
//!
//! * [`RefListingEngine`] — *reference listing* with **eager log-keeping**
//!   (the family of [15, 2, 19] in the paper, §2.3/§3). Every third-party
//!   exchange of a reference costs an extra control message to keep the
//!   target's reference list up to date, and distributed cycles of garbage
//!   are never reclaimed. Used by experiments E5 and E6.
//! * [`TracingEngine`] — a conceptually centralised graph-tracing GGD in the
//!   spirit of Ladin & Liskov [11] (§2.4): every site eagerly reports its
//!   portion of the global root graph to a coordinator, which can only
//!   declare garbage once it has heard from *every* site — the paper's
//!   "consensus bottleneck". It is comprehensive (collects cycles) but its
//!   message complexity scales with the number of live objects and a single
//!   stalled site blocks every reclamation. Used by experiments E3, E6, E7
//!   and E8.
//!
//! Both engines speak their own control-message dialect and are driven
//! through the same hooks as the causal engine (exports, third-party sends,
//! reachability snapshots, incoming messages), so the `ggd-sim` cluster can
//! swap them in transparently.

mod reflisting;
mod tracing;

pub use reflisting::{RefListingEngine, RefListingMessage};
pub use tracing::{TracingEngine, TracingMessage};
