//! A conceptually centralised graph-tracing GGD with a consensus phase.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

use ggd_heap::ReachabilitySnapshot;
use ggd_net::{MessageClass, Payload};
use ggd_types::{GlobalAddr, SiteId, VertexId};

/// Control messages of the tracing baseline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TracingMessage {
    /// A site reports its whole contribution to the global root graph to
    /// the coordinator (one entry per vertex it hosts, with that vertex's
    /// out-going inter-site edges and whether it is an actual root).
    Report {
        /// Reporting site.
        site: SiteId,
        /// Monotonically increasing epoch of the report.
        epoch: u64,
        /// The site's vertices, their rootedness and their out-edges.
        vertices: Vec<(VertexId, bool, Vec<GlobalAddr>)>,
    },
    /// The coordinator's verdicts for one site: these global roots are no
    /// longer reachable from any actual root.
    Sweep {
        /// Unreachable global roots hosted by the destination site.
        garbage: Vec<GlobalAddr>,
    },
}

impl Payload for TracingMessage {
    fn class(&self) -> MessageClass {
        MessageClass::Control
    }

    fn label(&self) -> &'static str {
        match self {
            TracingMessage::Report { .. } => "trace-report",
            TracingMessage::Sweep { .. } => "trace-sweep",
        }
    }

    fn size_hint(&self) -> usize {
        match self {
            TracingMessage::Report { vertices, .. } => {
                24 + vertices
                    .iter()
                    .map(|(_, _, edges)| 24 + 16 * edges.len())
                    .sum::<usize>()
            }
            TracingMessage::Sweep { garbage } => 16 + 16 * garbage.len(),
        }
    }
}

/// The graph-tracing baseline engine.
///
/// Site 0 doubles as the coordinator. Every site eagerly reports its portion
/// of the global root graph whenever it changes; the coordinator traces the
/// assembled graph, but — and this is the consensus bottleneck the paper
/// attacks — it may only emit verdicts once it holds a report from **every**
/// site, because a missing report could hide a path that keeps an object
/// alive.
#[derive(Debug, Clone)]
pub struct TracingEngine {
    site: SiteId,
    coordinator: SiteId,
    total_sites: u32,
    epoch: u64,
    last_report: Vec<(VertexId, bool, Vec<GlobalAddr>)>,
    /// Coordinator state: the latest report from every site.
    reports: BTreeMap<SiteId, Vec<(VertexId, bool, Vec<GlobalAddr>)>>,
    already_swept: BTreeSet<GlobalAddr>,
    outgoing: Vec<(SiteId, TracingMessage)>,
    verdicts: Vec<GlobalAddr>,
}

impl TracingEngine {
    /// Creates the engine for `site` in a system of `total_sites` sites.
    pub fn new(site: SiteId, total_sites: u32) -> Self {
        TracingEngine {
            site,
            coordinator: SiteId::new(0),
            total_sites,
            epoch: 0,
            last_report: Vec::new(),
            reports: BTreeMap::new(),
            already_swept: BTreeSet::new(),
            outgoing: Vec::new(),
            verdicts: Vec::new(),
        }
    }

    /// The site this engine runs on.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// True when this engine is the coordinator.
    pub fn is_coordinator(&self) -> bool {
        self.site == self.coordinator
    }

    /// Number of sites the coordinator has current reports from.
    pub fn reports_held(&self) -> usize {
        self.reports.len()
    }

    /// A fresh reachability snapshot: (re)build this site's report and send
    /// it to the coordinator if it changed.
    pub fn apply_snapshot(&mut self, snapshot: &ReachabilitySnapshot) {
        let anchor = VertexId::SiteRoot(self.site);
        let mut vertices = vec![(
            anchor,
            true,
            snapshot.edges_of(anchor).into_iter().collect::<Vec<_>>(),
        )];
        for id in snapshot.global_roots() {
            let vertex = VertexId::Object(GlobalAddr::from_parts(self.site, id));
            vertices.push((
                vertex,
                snapshot.is_locally_rooted(id),
                snapshot.edges_of(vertex).into_iter().collect(),
            ));
        }
        if vertices == self.last_report {
            return;
        }
        self.last_report = vertices.clone();
        self.epoch += 1;
        let report = TracingMessage::Report {
            site: self.site,
            epoch: self.epoch,
            vertices,
        };
        if self.is_coordinator() {
            self.on_message(report);
        } else {
            self.outgoing.push((self.coordinator, report));
        }
    }

    /// Processes one incoming control message.
    pub fn on_message(&mut self, message: TracingMessage) {
        match message {
            TracingMessage::Report { site, vertices, .. } => {
                if self.is_coordinator() {
                    self.reports.insert(site, vertices);
                    self.trace_if_complete();
                }
            }
            TracingMessage::Sweep { garbage } => {
                for addr in garbage {
                    if addr.site() == self.site {
                        self.verdicts.push(addr);
                    }
                }
            }
        }
    }

    /// Drains queued control messages.
    pub fn take_outgoing(&mut self) -> Vec<(SiteId, TracingMessage)> {
        std::mem::take(&mut self.outgoing)
    }

    /// Drains verdicts.
    pub fn take_verdicts(&mut self) -> Vec<GlobalAddr> {
        std::mem::take(&mut self.verdicts)
    }

    /// The consensus-gated trace: runs only when every site has reported.
    fn trace_if_complete(&mut self) {
        if self.reports.len() < self.total_sites as usize {
            return;
        }
        // Assemble the global root graph and trace it from the actual roots.
        let mut edges: BTreeMap<VertexId, Vec<VertexId>> = BTreeMap::new();
        let mut roots: Vec<VertexId> = Vec::new();
        let mut all_objects: BTreeSet<GlobalAddr> = BTreeSet::new();
        for vertices in self.reports.values() {
            for (vertex, is_root, targets) in vertices {
                if let VertexId::Object(addr) = vertex {
                    all_objects.insert(*addr);
                }
                if *is_root || vertex.is_site_root() {
                    roots.push(*vertex);
                }
                edges
                    .entry(*vertex)
                    .or_default()
                    .extend(targets.iter().map(|&t| VertexId::Object(t)));
            }
        }
        let mut marked: BTreeSet<VertexId> = BTreeSet::new();
        let mut stack = roots;
        while let Some(vertex) = stack.pop() {
            if !marked.insert(vertex) {
                continue;
            }
            if let Some(succ) = edges.get(&vertex) {
                stack.extend(succ.iter().copied());
            }
        }
        let mut per_site: BTreeMap<SiteId, Vec<GlobalAddr>> = BTreeMap::new();
        for addr in all_objects {
            if !marked.contains(&VertexId::Object(addr)) && self.already_swept.insert(addr) {
                per_site.entry(addr.site()).or_default().push(addr);
            }
        }
        for (site, garbage) in per_site {
            let sweep = TracingMessage::Sweep { garbage };
            if site == self.site {
                self.on_message(sweep);
            } else {
                self.outgoing.push((site, sweep));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggd_heap::{ObjRef, SiteHeap};

    fn snapshot_of(heap: &SiteHeap) -> ReachabilitySnapshot {
        heap.snapshot()
    }

    #[test]
    fn verdict_requires_reports_from_every_site() {
        // Site 0: root -> remote object on site 1; site 2 idle.
        let mut h0 = SiteHeap::new(SiteId::new(0));
        let mut h1 = SiteHeap::new(SiteId::new(1));
        let h2 = SiteHeap::new(SiteId::new(2));
        let mut e0 = TracingEngine::new(SiteId::new(0), 3);
        let mut e1 = TracingEngine::new(SiteId::new(1), 3);
        let mut e2 = TracingEngine::new(SiteId::new(2), 3);
        assert!(e0.is_coordinator());
        assert!(!e1.is_coordinator());

        let obj = h1.alloc();
        h1.register_global_root(obj).unwrap();
        let obj_addr = h1.addr_of(obj);
        let root = h0.alloc_local_root();
        h0.add_ref(root, ObjRef::Remote(obj_addr)).unwrap();
        h0.remove_ref(root, ObjRef::Remote(obj_addr)).unwrap();

        // Only sites 0 and 1 report: no sweep may be emitted yet.
        e0.apply_snapshot(&snapshot_of(&h0));
        e1.apply_snapshot(&snapshot_of(&h1));
        for (to, msg) in e1.take_outgoing() {
            assert_eq!(to, SiteId::new(0));
            e0.on_message(msg);
        }
        assert_eq!(e0.reports_held(), 2);
        assert!(e0.take_outgoing().is_empty(), "consensus not reached yet");

        // The third site reports; the trace completes and the object on
        // site 1 is swept.
        e2.apply_snapshot(&snapshot_of(&h2));
        for (_to, msg) in e2.take_outgoing() {
            e0.on_message(msg);
        }
        let out = e0.take_outgoing();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, SiteId::new(1));
        for (_, msg) in out {
            e1.on_message(msg);
        }
        assert_eq!(e1.take_verdicts(), vec![obj_addr]);
    }

    #[test]
    fn tracing_collects_cycles_once_everyone_reports() {
        // A two-object cross-site cycle with no root.
        let mut h0 = SiteHeap::new(SiteId::new(0));
        let mut h1 = SiteHeap::new(SiteId::new(1));
        let a = h0.alloc();
        let b = h1.alloc();
        h0.register_global_root(a).unwrap();
        h1.register_global_root(b).unwrap();
        h0.add_ref(a, ObjRef::Remote(h1.addr_of(b))).unwrap();
        h1.add_ref(b, ObjRef::Remote(h0.addr_of(a))).unwrap();

        let mut e0 = TracingEngine::new(SiteId::new(0), 2);
        let mut e1 = TracingEngine::new(SiteId::new(1), 2);
        e0.apply_snapshot(&h0.snapshot());
        e1.apply_snapshot(&h1.snapshot());
        for (_, msg) in e1.take_outgoing() {
            e0.on_message(msg);
        }
        let verdicts_for_site0 = e0.take_verdicts();
        assert_eq!(verdicts_for_site0, vec![h0.addr_of(a)]);
        let out = e0.take_outgoing();
        assert_eq!(out.len(), 1);
        for (_, msg) in out {
            e1.on_message(msg);
        }
        assert_eq!(e1.take_verdicts(), vec![h1.addr_of(b)]);
    }

    #[test]
    fn message_sizes_scale_with_report_content() {
        let small = TracingMessage::Sweep { garbage: vec![] };
        let big = TracingMessage::Report {
            site: SiteId::new(1),
            epoch: 1,
            vertices: vec![(VertexId::site_root(1), true, vec![GlobalAddr::new(2, 2); 8])],
        };
        assert!(big.size_hint() > small.size_hint());
        assert_eq!(big.label(), "trace-report");
        assert_eq!(small.label(), "trace-sweep");
    }
}
