//! A conceptually centralised graph-tracing GGD with a consensus phase.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

use ggd_heap::ReachabilitySnapshot;
use ggd_net::{MessageClass, Payload};
use ggd_types::{GlobalAddr, SiteId, VertexId};

/// Control messages of the tracing baseline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TracingMessage {
    /// A site reports its whole contribution to the global root graph to
    /// the coordinator (one entry per vertex it hosts, with that vertex's
    /// out-going inter-site edges and whether it is an actual root), plus
    /// its reference-transfer ledgers (see [`TracingEngine`]).
    Report {
        /// Reporting site.
        site: SiteId,
        /// Monotonically increasing epoch of the report.
        epoch: u64,
        /// When set, this report answers the coordinator's poll for the
        /// given collection round; when `None` it is a spontaneous
        /// change-notification.
        ack_round: Option<u64>,
        /// The site's vertices, their rootedness and their out-edges.
        vertices: Vec<(VertexId, bool, Vec<GlobalAddr>)>,
        /// Per `(target, recipient)` pair: how many reference transfers this
        /// site has *sent* (as exporter or third-party forwarder).
        transfers_sent: Vec<((GlobalAddr, GlobalAddr), u64)>,
        /// Per `(target, recipient)` pair: how many reference transfers this
        /// site has *received and stored*.
        transfers_received: Vec<((GlobalAddr, GlobalAddr), u64)>,
    },
    /// The coordinator asks every site for a fresh report: a collection
    /// round may only conclude once **every** site has answered — the
    /// consensus requirement the paper's E7 experiment measures.
    RoundPoll {
        /// The round being polled.
        round: u64,
    },
    /// The coordinator's verdicts for one site: these global roots are no
    /// longer reachable from any actual root.
    Sweep {
        /// Unreachable global roots hosted by the destination site.
        garbage: Vec<GlobalAddr>,
    },
}

impl Payload for TracingMessage {
    fn class(&self) -> MessageClass {
        MessageClass::Control
    }

    fn label(&self) -> &'static str {
        match self {
            TracingMessage::Report {
                ack_round: None, ..
            } => "trace-report",
            TracingMessage::Report {
                ack_round: Some(_), ..
            } => "trace-ack",
            TracingMessage::RoundPoll { .. } => "trace-poll",
            TracingMessage::Sweep { .. } => "trace-sweep",
        }
    }

    fn size_hint(&self) -> usize {
        match self {
            TracingMessage::Report {
                vertices,
                transfers_sent,
                transfers_received,
                ..
            } => {
                24 + vertices
                    .iter()
                    .map(|(_, _, edges)| 24 + 16 * edges.len())
                    .sum::<usize>()
                    + 40 * (transfers_sent.len() + transfers_received.len())
            }
            TracingMessage::RoundPoll { .. } => 16,
            TracingMessage::Sweep { garbage } => 16 + 16 * garbage.len(),
        }
    }
}

/// One `(target, recipient) → count` ledger entry as carried on the wire.
type LedgerEntries = Vec<((GlobalAddr, GlobalAddr), u64)>;

/// Everything a site tells the coordinator (message payload minus identity).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct ReportBody {
    vertices: Vec<(VertexId, bool, Vec<GlobalAddr>)>,
    transfers_sent: LedgerEntries,
    transfers_received: LedgerEntries,
}

/// Strips every mention of a departed site from a report body: its hosted
/// vertices, edges towards its objects, and ledger entries whose target or
/// recipient it hosted. Used by the planned-leave path only — after the
/// reference handoff none of these can correspond to real state.
fn purge_site_from_body(body: &mut ReportBody, departed: SiteId) {
    body.vertices
        .retain(|(vertex, _, _)| vertex.site() != departed);
    for (_, _, edges) in body.vertices.iter_mut() {
        edges.retain(|addr| addr.site() != departed);
    }
    body.transfers_sent
        .retain(|((t, r), _)| t.site() != departed && r.site() != departed);
    body.transfers_received
        .retain(|((t, r), _)| t.site() != departed && r.site() != departed);
}

/// The graph-tracing baseline engine.
///
/// Site 0 doubles as the coordinator. Every site eagerly reports its portion
/// of the global root graph whenever it changes. Whenever the coordinator
/// learns of a change it opens a *collection round*: it polls every other
/// site and may assemble, trace and sweep the global graph only once every
/// site has acknowledged the round — and this is the consensus bottleneck
/// the paper attacks: one stalled or unreachable site blocks every
/// reclamation in the system, no matter how unrelated.
///
/// # In-transit reference accounting
///
/// Acknowledged reports are still not a perfectly consistent cut: a
/// reference transfer can be on the wire while the round closes. To stay
/// safe the engine keeps two monotonic ledgers, included in every report:
/// transfers *sent* per `(target, recipient)` pair (recorded by the export /
/// third-party-send hooks) and transfers *received and stored* (recorded by
/// the receive hook). During a trace the coordinator conservatively treats
/// every target with more sends than receipts as a root — the reference
/// could still be stored at any moment. A receipt is recorded in the same
/// report as the heap edge it created, so once the ledgers match, the edge
/// (or its legitimate destruction) is already visible.
///
/// Known limitation: a transfer whose reference message is dropped by fault
/// injection, or whose recipient object died before delivery, stays
/// unmatched forever and pins the target (residual garbage, never a safety
/// violation) — one more reason the paper prefers causal dependency
/// tracking over eager global views.
#[derive(Debug, Clone)]
pub struct TracingEngine {
    site: SiteId,
    coordinator: SiteId,
    /// Current fleet membership. The consensus barrier waits for exactly
    /// these sites, so elastic membership flows through here: a joined site
    /// is added (and polled into any open round), a departed one removed
    /// (possibly closing a round that was blocked on it).
    members: BTreeSet<SiteId>,
    epoch: u64,
    last_report: Option<ReportBody>,
    /// This site's ledger of reference transfers it performed.
    transfers_sent: BTreeMap<(GlobalAddr, GlobalAddr), u64>,
    /// This site's ledger of reference transfers it received and stored.
    transfers_received: BTreeMap<(GlobalAddr, GlobalAddr), u64>,
    /// Coordinator state: the latest report from every site.
    reports: BTreeMap<SiteId, ReportBody>,
    /// Coordinator state: something changed since the last completed round.
    dirty: bool,
    /// Coordinator state: the current round number.
    round: u64,
    /// Coordinator state: the sites that have acknowledged the open round
    /// (`None` when no round is open). Purely a consensus barrier — the
    /// trace itself reads the freshest reports.
    round_acks: Option<BTreeSet<SiteId>>,
    already_swept: BTreeSet<GlobalAddr>,
    outgoing: Vec<(SiteId, TracingMessage)>,
    verdicts: Vec<GlobalAddr>,
}

impl TracingEngine {
    /// Creates the engine for `site` in a system of `total_sites` founding
    /// sites (sites `0..total_sites`); later joins and departures are fed in
    /// through [`TracingEngine::add_member`] / [`TracingEngine::remove_member`].
    pub fn new(site: SiteId, total_sites: u32) -> Self {
        TracingEngine {
            site,
            coordinator: SiteId::new(0),
            members: (0..total_sites).map(SiteId::new).collect(),
            epoch: 0,
            last_report: None,
            transfers_sent: BTreeMap::new(),
            transfers_received: BTreeMap::new(),
            reports: BTreeMap::new(),
            dirty: false,
            round: 0,
            round_acks: None,
            already_swept: BTreeSet::new(),
            outgoing: Vec::new(),
            verdicts: Vec::new(),
        }
    }

    /// The site this engine runs on.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// True when this engine is the coordinator.
    pub fn is_coordinator(&self) -> bool {
        self.site == self.coordinator
    }

    /// Number of sites the coordinator has (spontaneous) reports from.
    pub fn reports_held(&self) -> usize {
        self.reports.len()
    }

    /// Number of collection rounds the coordinator has opened so far.
    pub fn rounds_started(&self) -> u64 {
        self.round
    }

    /// True while the coordinator is waiting for round acknowledgements.
    pub fn round_open(&self) -> bool {
        self.round_acks.is_some()
    }

    /// The sites the consensus barrier currently waits for.
    pub fn members(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.members.iter().copied()
    }

    /// A site joined the fleet: the consensus barrier must include it from
    /// now on. If a round is already open the newcomer is polled into it —
    /// otherwise the round would close over a site it never heard from.
    pub fn add_member(&mut self, site: SiteId) {
        if !self.members.insert(site) {
            return;
        }
        if self.is_coordinator() && self.round_acks.is_some() && site != self.site {
            self.outgoing
                .push((site, TracingMessage::RoundPoll { round: self.round }));
        }
    }

    /// A site left the fleet. With `purge` (planned leave, references handed
    /// off) every trace of it is dropped: its report, its entries in other
    /// stored reports, and this site's own ledger entries touching it — the
    /// departed site's objects no longer exist, so an unmatched transfer
    /// towards it can never be stored and must stop pinning its target.
    /// Without `purge` (eviction) its last report and every ledger entry are
    /// kept: whatever the evicted site reached stays conservatively pinned —
    /// residual garbage, never a safety violation.
    ///
    /// Either way the site stops counting towards the consensus barrier, so
    /// a round blocked solely on the departed site completes.
    pub fn remove_member(&mut self, departed: SiteId, purge: bool) {
        if !self.members.remove(&departed) {
            return;
        }
        if let Some(acks) = self.round_acks.as_mut() {
            acks.remove(&departed);
        }
        if purge {
            self.transfers_sent
                .retain(|&(t, r), _| t.site() != departed && r.site() != departed);
            self.transfers_received
                .retain(|&(t, r), _| t.site() != departed && r.site() != departed);
            if let Some(last) = self.last_report.as_mut() {
                purge_site_from_body(last, departed);
            }
            self.reports.remove(&departed);
            for body in self.reports.values_mut() {
                purge_site_from_body(body, departed);
            }
            self.already_swept.retain(|addr| addr.site() != departed);
            self.outgoing.retain(|(to, _)| *to != departed);
            self.dirty = true;
        }
        if self.is_coordinator() {
            self.finish_round_if_complete();
            self.open_round_if_needed();
        }
    }

    /// True when this engine's state still mentions `site` anywhere —
    /// membership, stored or own reports (vertices, edges, ledgers), local
    /// transfer ledgers, swept-set or queued messages. After a purging
    /// [`TracingEngine::remove_member`] this must be `false` for the
    /// departed site; the membership oracle pins that.
    pub fn mentions_site(&self, site: SiteId) -> bool {
        let body_mentions = |body: &ReportBody| {
            body.vertices.iter().any(|(vertex, _, edges)| {
                vertex.site() == site || edges.iter().any(|addr| addr.site() == site)
            }) || body
                .transfers_sent
                .iter()
                .chain(&body.transfers_received)
                .any(|((t, r), _)| t.site() == site || r.site() == site)
        };
        self.members.contains(&site)
            || self.reports.contains_key(&site)
            || self.reports.values().any(body_mentions)
            || self.last_report.as_ref().is_some_and(body_mentions)
            || self
                .transfers_sent
                .keys()
                .chain(self.transfers_received.keys())
                .any(|&(t, r)| t.site() == site || r.site() == site)
            || self.already_swept.iter().any(|addr| addr.site() == site)
            || self.outgoing.iter().any(|(to, _)| *to == site)
    }

    /// Export hook: this site sent a reference to its local object `target`
    /// to the remote object `recipient`. The transfer ledger entry makes the
    /// in-flight reference visible to the coordinator.
    pub fn on_export(&mut self, target: GlobalAddr, recipient: GlobalAddr) {
        *self.transfers_sent.entry((target, recipient)).or_default() += 1;
    }

    /// Third-party-send hook: this site forwarded a reference denoting the
    /// remote object `target` to the (also remote) object `recipient`.
    pub fn on_third_party_send(&mut self, target: GlobalAddr, recipient: GlobalAddr) {
        *self.transfers_sent.entry((target, recipient)).or_default() += 1;
    }

    /// Receive hook: the local object `recipient` received (and stored) a
    /// reference to `target`, matching one sent transfer.
    pub fn on_receive_ref(&mut self, recipient: GlobalAddr, target: GlobalAddr) {
        *self
            .transfers_received
            .entry((target, recipient))
            .or_default() += 1;
    }

    fn ledgers(&self) -> (LedgerEntries, LedgerEntries) {
        (
            self.transfers_sent.iter().map(|(&k, &v)| (k, v)).collect(),
            self.transfers_received
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect(),
        )
    }

    fn current_body(&self, snapshot: &ReachabilitySnapshot) -> ReportBody {
        let anchor = VertexId::SiteRoot(self.site);
        let mut vertices = vec![(
            anchor,
            true,
            snapshot.edges_of(anchor).into_iter().collect::<Vec<_>>(),
        )];
        for id in snapshot.global_roots() {
            let vertex = VertexId::Object(GlobalAddr::from_parts(self.site, id));
            vertices.push((
                vertex,
                snapshot.is_locally_rooted(id),
                snapshot.edges_of(vertex).into_iter().collect(),
            ));
        }
        let (transfers_sent, transfers_received) = self.ledgers();
        ReportBody {
            vertices,
            transfers_sent,
            transfers_received,
        }
    }

    /// The body answering a round poll: vertices from the last snapshot
    /// (bare anchor before the first one), ledgers always *live* — a hook
    /// may have fired since the last sync, and an ack missing that
    /// sent-entry would let the coordinator sweep a target whose reference
    /// is in flight.
    fn polled_body(&self) -> ReportBody {
        let vertices = match &self.last_report {
            Some(last) => last.vertices.clone(),
            None => vec![(VertexId::SiteRoot(self.site), true, Vec::new())],
        };
        let (transfers_sent, transfers_received) = self.ledgers();
        ReportBody {
            vertices,
            transfers_sent,
            transfers_received,
        }
    }

    fn report_message(&mut self, body: ReportBody, ack_round: Option<u64>) -> TracingMessage {
        self.epoch += 1;
        TracingMessage::Report {
            site: self.site,
            epoch: self.epoch,
            ack_round,
            vertices: body.vertices,
            transfers_sent: body.transfers_sent,
            transfers_received: body.transfers_received,
        }
    }

    /// A fresh reachability snapshot: (re)build this site's report and send
    /// it to the coordinator if it changed.
    pub fn apply_snapshot(&mut self, snapshot: &ReachabilitySnapshot) {
        let body = self.current_body(snapshot);
        if Some(&body) == self.last_report.as_ref() {
            return;
        }
        self.last_report = Some(body.clone());
        if self.is_coordinator() {
            self.note_report(self.site, body);
        } else {
            let report = self.report_message(body, None);
            self.outgoing.push((self.coordinator, report));
        }
    }

    /// Processes one incoming control message.
    pub fn on_message(&mut self, message: TracingMessage) {
        match message {
            TracingMessage::Report {
                site,
                ack_round,
                vertices,
                transfers_sent,
                transfers_received,
                ..
            } => {
                if self.is_coordinator() {
                    if !self.members.contains(&site) {
                        // A straggler report from a departed site: its state
                        // was already retired (or frozen), don't resurrect it.
                        return;
                    }
                    let body = ReportBody {
                        vertices,
                        transfers_sent,
                        transfers_received,
                    };
                    if let Some(acked) = ack_round {
                        if acked == self.round {
                            if let Some(acks) = self.round_acks.as_mut() {
                                acks.insert(site);
                            }
                        }
                    }
                    self.note_report(site, body);
                    self.finish_round_if_complete();
                }
            }
            TracingMessage::RoundPoll { round } => {
                let body = self.polled_body();
                self.last_report = Some(body.clone());
                let reply = self.report_message(body, Some(round));
                self.outgoing.push((self.coordinator, reply));
            }
            TracingMessage::Sweep { garbage } => {
                for addr in garbage {
                    if addr.site() == self.site {
                        self.verdicts.push(addr);
                    }
                }
            }
        }
    }

    /// Drains queued control messages.
    pub fn take_outgoing(&mut self) -> Vec<(SiteId, TracingMessage)> {
        std::mem::take(&mut self.outgoing)
    }

    /// Drains verdicts.
    pub fn take_verdicts(&mut self) -> Vec<GlobalAddr> {
        std::mem::take(&mut self.verdicts)
    }

    /// Coordinator: absorbs a (spontaneous or acknowledged) report and opens
    /// a round if the global picture changed.
    fn note_report(&mut self, site: SiteId, body: ReportBody) {
        if self.reports.get(&site) != Some(&body) {
            self.reports.insert(site, body);
            self.dirty = true;
        }
        self.open_round_if_needed();
    }

    fn open_round_if_needed(&mut self) {
        if !self.dirty || self.round_acks.is_some() {
            return;
        }
        self.dirty = false;
        self.round += 1;
        self.round_acks = Some(BTreeSet::new());
        let polled: Vec<SiteId> = self
            .members
            .iter()
            .copied()
            .filter(|&site| site != self.site)
            .collect();
        for site in polled {
            self.outgoing
                .push((site, TracingMessage::RoundPoll { round: self.round }));
        }
        // A single-site system has nobody to poll.
        self.finish_round_if_complete();
    }

    /// The consensus-gated trace: runs only when every site has acknowledged
    /// the open round.
    fn finish_round_if_complete(&mut self) {
        let awaited = self
            .members
            .iter()
            .filter(|&&site| site != self.site)
            .count();
        let complete = match &self.round_acks {
            Some(acks) => acks.len() >= awaited,
            None => false,
        };
        if !complete {
            return;
        }
        self.round_acks = None;

        // The ack set is purely the consensus barrier. The trace itself
        // reads the *freshest* report held for every site (`reports` is at
        // least as new as any ack, since every ack also passes through
        // `note_report`), so a change a site makes after acknowledging —
        // a re-link, a fresh export — is never traced over stale data.
        let mut freshest = self.reports.clone();
        if let Some(own) = &self.last_report {
            freshest.insert(self.site, own.clone());
        }
        let bodies: Vec<&ReportBody> = freshest.values().collect();
        let mut edges: BTreeMap<VertexId, Vec<VertexId>> = BTreeMap::new();
        let mut roots: Vec<VertexId> = Vec::new();
        let mut all_objects: BTreeSet<GlobalAddr> = BTreeSet::new();
        let mut in_transit: BTreeMap<(GlobalAddr, GlobalAddr), i64> = BTreeMap::new();
        for body in bodies {
            for (vertex, is_root, targets) in &body.vertices {
                if let VertexId::Object(addr) = vertex {
                    all_objects.insert(*addr);
                }
                if *is_root || vertex.is_site_root() {
                    roots.push(*vertex);
                }
                edges
                    .entry(*vertex)
                    .or_default()
                    .extend(targets.iter().map(|&t| VertexId::Object(t)));
            }
            for &(pair, count) in &body.transfers_sent {
                *in_transit.entry(pair).or_default() += count as i64;
            }
            for &(pair, count) in &body.transfers_received {
                *in_transit.entry(pair).or_default() -= count as i64;
            }
        }
        // Conservatively root every target with unmatched transfers: the
        // reference is (or may still be) on the wire and could be stored at
        // any moment. Stale ledgers only ever err towards keeping objects.
        for (&(target, _recipient), &unmatched) in &in_transit {
            if unmatched > 0 {
                roots.push(VertexId::Object(target));
            }
        }
        let mut marked: BTreeSet<VertexId> = BTreeSet::new();
        let mut stack = roots;
        while let Some(vertex) = stack.pop() {
            if !marked.insert(vertex) {
                continue;
            }
            if let Some(succ) = edges.get(&vertex) {
                stack.extend(succ.iter().copied());
            }
        }
        let mut per_site: BTreeMap<SiteId, Vec<GlobalAddr>> = BTreeMap::new();
        for addr in all_objects {
            if !marked.contains(&VertexId::Object(addr)) && self.already_swept.insert(addr) {
                per_site.entry(addr.site()).or_default().push(addr);
            }
        }
        for (site, garbage) in per_site {
            let sweep = TracingMessage::Sweep { garbage };
            if site == self.site {
                self.on_message(sweep);
            } else {
                self.outgoing.push((site, sweep));
            }
        }
        // Changes that arrived while the round was closing trigger the next.
        self.open_round_if_needed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggd_heap::{ObjRef, SiteHeap};

    /// Pumps control messages between engines until quiescent; `withheld`
    /// sites neither receive nor answer (a stalled site).
    fn pump(engines: &mut [TracingEngine], withheld: &[SiteId]) {
        loop {
            let mut in_flight: Vec<(SiteId, TracingMessage)> = Vec::new();
            for engine in engines.iter_mut() {
                in_flight.extend(engine.take_outgoing());
            }
            if in_flight.is_empty() {
                break;
            }
            for (to, message) in in_flight {
                if withheld.contains(&to) {
                    continue;
                }
                engines
                    .iter_mut()
                    .find(|e| e.site() == to)
                    .expect("destination engine exists")
                    .on_message(message);
            }
        }
    }

    #[test]
    fn verdict_requires_acks_from_every_site() {
        // Site 0: root -> remote object on site 1; site 2 stalled.
        let mut h0 = SiteHeap::new(SiteId::new(0));
        let mut h1 = SiteHeap::new(SiteId::new(1));
        let mut engines = vec![
            TracingEngine::new(SiteId::new(0), 3),
            TracingEngine::new(SiteId::new(1), 3),
            TracingEngine::new(SiteId::new(2), 3),
        ];
        assert!(engines[0].is_coordinator());
        assert!(!engines[1].is_coordinator());

        let obj = h1.alloc();
        h1.register_global_root(obj).unwrap();
        let obj_addr = h1.addr_of(obj);
        let root = h0.alloc_local_root();
        h0.add_ref(root, ObjRef::Remote(obj_addr)).unwrap();
        h0.remove_ref(root, ObjRef::Remote(obj_addr)).unwrap();

        engines[0].apply_snapshot(&h0.snapshot());
        engines[1].apply_snapshot(&h1.snapshot());

        // With site 2 stalled the round can never close: no verdict.
        pump(&mut engines, &[SiteId::new(2)]);
        assert!(engines[0].round_open(), "round blocked on the stalled site");
        assert!(engines[1].take_verdicts().is_empty(), "no ack, no sweep");

        // Site 2 resumes: re-deliver the poll by pumping without withholding
        // (the coordinator's poll is still queued towards site 2 in a real
        // network; here we re-open the round by reporting a change).
        let open_round = engines[0].rounds_started();
        engines[2].on_message(TracingMessage::RoundPoll { round: open_round });
        pump(&mut engines, &[]);
        assert_eq!(engines[1].take_verdicts(), vec![obj_addr]);
    }

    #[test]
    fn tracing_collects_cycles_once_everyone_acks() {
        // A two-object cross-site cycle with no root.
        let mut h0 = SiteHeap::new(SiteId::new(0));
        let mut h1 = SiteHeap::new(SiteId::new(1));
        let a = h0.alloc();
        let b = h1.alloc();
        h0.register_global_root(a).unwrap();
        h1.register_global_root(b).unwrap();
        h0.add_ref(a, ObjRef::Remote(h1.addr_of(b))).unwrap();
        h1.add_ref(b, ObjRef::Remote(h0.addr_of(a))).unwrap();

        let mut engines = vec![
            TracingEngine::new(SiteId::new(0), 2),
            TracingEngine::new(SiteId::new(1), 2),
        ];
        engines[0].apply_snapshot(&h0.snapshot());
        engines[1].apply_snapshot(&h1.snapshot());
        pump(&mut engines, &[]);
        assert_eq!(engines[0].take_verdicts(), vec![h0.addr_of(a)]);
        assert_eq!(engines[1].take_verdicts(), vec![h1.addr_of(b)]);
    }

    #[test]
    fn unmatched_transfers_pin_their_target() {
        // Site 1 hosts `obj`, unreferenced from anywhere, but a transfer of
        // its reference is still unmatched (in flight): no sweep.
        let mut h1 = SiteHeap::new(SiteId::new(1));
        let obj = h1.alloc();
        h1.register_global_root(obj).unwrap();
        let obj_addr = h1.addr_of(obj);

        let mut engines = vec![
            TracingEngine::new(SiteId::new(0), 2),
            TracingEngine::new(SiteId::new(1), 2),
        ];
        engines[1].on_export(obj_addr, GlobalAddr::new(0, 1));
        engines[1].apply_snapshot(&h1.snapshot());
        pump(&mut engines, &[]);
        assert!(
            engines[1].take_verdicts().is_empty(),
            "in-transit reference keeps the target alive"
        );

        // Once the receipt is ledgered (and the recipient still does not
        // store the reference anywhere reachable... it was received by a
        // never-reported recipient), the target becomes collectable.
        engines[0].on_receive_ref(GlobalAddr::new(0, 1), obj_addr);
        let h0 = SiteHeap::new(SiteId::new(0));
        engines[0].apply_snapshot(&h0.snapshot());
        pump(&mut engines, &[]);
        assert_eq!(engines[1].take_verdicts(), vec![obj_addr]);
    }

    /// The "tracing under loss" limitation documented in DESIGN.md ("Known
    /// limitations"): a reference transfer whose mutator message is dropped
    /// leaves a permanently unmatched sent-ledger entry. The coordinator
    /// must then conservatively treat the target as rooted in every round —
    /// for ever — so the target is pinned as *residual garbage*, but no
    /// verdict is ever produced for it (never a safety violation).
    #[test]
    fn dropped_transfer_pins_target_forever_without_violation() {
        // Site 1 hosts `obj`, a global root nothing references; site 1
        // exported its reference towards site 0, but the message was lost
        // in flight: the receive hook never fires anywhere.
        let mut h1 = SiteHeap::new(SiteId::new(1));
        let obj = h1.alloc();
        h1.register_global_root(obj).unwrap();
        let obj_addr = h1.addr_of(obj);
        let h0 = SiteHeap::new(SiteId::new(0));

        let mut engines = vec![
            TracingEngine::new(SiteId::new(0), 2),
            TracingEngine::new(SiteId::new(1), 2),
        ];
        engines[1].on_export(obj_addr, GlobalAddr::new(0, 1));
        engines[0].apply_snapshot(&h0.snapshot());
        engines[1].apply_snapshot(&h1.snapshot());
        pump(&mut engines, &[]);
        assert!(
            engines[1].take_verdicts().is_empty(),
            "round 1: the unmatched transfer pins the target"
        );

        // Force several more collection rounds by reporting fresh changes
        // elsewhere: the ledger entry never matches, so the pin is
        // permanent — `obj` stays on the heap as residual garbage.
        let mut h0_churn = h0;
        for round in 0..3 {
            let filler = h0_churn.alloc_local_root();
            engines[0].apply_snapshot(&h0_churn.snapshot());
            pump(&mut engines, &[]);
            assert!(
                engines[1].take_verdicts().is_empty(),
                "round {}: a lost transfer must keep pinning the target",
                round + 2
            );
            let _ = filler;
        }
        assert!(
            h1.contains(obj),
            "the target was never freed: residual garbage, not a violation"
        );
        assert!(engines[0].rounds_started() >= 2, "rounds did run");
    }

    #[test]
    fn removing_a_member_closes_a_round_blocked_on_it() {
        // Same shape as `verdict_requires_acks_from_every_site`, but instead
        // of resuming, the stalled site is removed from the membership: the
        // blocked round must complete with the survivors' acks alone.
        let mut h0 = SiteHeap::new(SiteId::new(0));
        let mut h1 = SiteHeap::new(SiteId::new(1));
        let mut engines = vec![
            TracingEngine::new(SiteId::new(0), 3),
            TracingEngine::new(SiteId::new(1), 3),
            TracingEngine::new(SiteId::new(2), 3),
        ];

        let obj = h1.alloc();
        h1.register_global_root(obj).unwrap();
        let obj_addr = h1.addr_of(obj);
        let root = h0.alloc_local_root();
        h0.add_ref(root, ObjRef::Remote(obj_addr)).unwrap();
        h0.remove_ref(root, ObjRef::Remote(obj_addr)).unwrap();

        engines[0].apply_snapshot(&h0.snapshot());
        engines[1].apply_snapshot(&h1.snapshot());
        pump(&mut engines, &[SiteId::new(2)]);
        assert!(engines[0].round_open(), "round blocked on the stalled site");

        for engine in engines.iter_mut() {
            engine.remove_member(SiteId::new(2), false);
        }
        pump(&mut engines, &[SiteId::new(2)]);
        assert_eq!(engines[1].take_verdicts(), vec![obj_addr]);
    }

    #[test]
    fn purge_unpins_transfers_towards_the_departed_site() {
        // Site 1 exported `obj` towards a recipient on site 2; the receipt
        // never ledgered. The unmatched transfer pins `obj` — until site 2
        // departs in a planned leave and the entry is purged.
        let mut h1 = SiteHeap::new(SiteId::new(1));
        let obj = h1.alloc();
        h1.register_global_root(obj).unwrap();
        let obj_addr = h1.addr_of(obj);
        let h0 = SiteHeap::new(SiteId::new(0));

        let mut engines = vec![
            TracingEngine::new(SiteId::new(0), 3),
            TracingEngine::new(SiteId::new(1), 3),
            TracingEngine::new(SiteId::new(2), 3),
        ];
        engines[1].on_export(obj_addr, GlobalAddr::new(2, 1));
        engines[0].apply_snapshot(&h0.snapshot());
        engines[1].apply_snapshot(&h1.snapshot());
        let h2 = SiteHeap::new(SiteId::new(2));
        engines[2].apply_snapshot(&h2.snapshot());
        pump(&mut engines, &[]);
        assert!(
            engines[1].take_verdicts().is_empty(),
            "unmatched transfer pins the target"
        );

        for engine in engines.iter_mut() {
            engine.remove_member(SiteId::new(2), true);
        }
        // The purge dirtied the coordinator; a fresh report from site 1
        // (ledger now clean) lets the next round sweep the object.
        engines[1].apply_snapshot(&h1.snapshot());
        pump(&mut engines, &[SiteId::new(2)]);
        assert_eq!(engines[1].take_verdicts(), vec![obj_addr]);
    }

    #[test]
    fn joined_member_is_polled_into_an_open_round() {
        let mut h0 = SiteHeap::new(SiteId::new(0));
        let mut h1 = SiteHeap::new(SiteId::new(1));
        let mut engines = vec![
            TracingEngine::new(SiteId::new(0), 2),
            TracingEngine::new(SiteId::new(1), 2),
        ];
        let obj = h1.alloc();
        h1.register_global_root(obj).unwrap();
        let obj_addr = h1.addr_of(obj);
        let root = h0.alloc_local_root();
        h0.add_ref(root, ObjRef::Remote(obj_addr)).unwrap();
        h0.remove_ref(root, ObjRef::Remote(obj_addr)).unwrap();
        engines[0].apply_snapshot(&h0.snapshot());
        engines[1].apply_snapshot(&h1.snapshot());

        // Withhold site 1 so the round stays open, then join site 2: the
        // newcomer must be polled into the open round and the round must not
        // close before it acks.
        pump(&mut engines, &[SiteId::new(1)]);
        assert!(engines[0].round_open());
        engines.push(TracingEngine::new(SiteId::new(2), 2));
        for engine in engines.iter_mut() {
            engine.add_member(SiteId::new(2));
        }
        let polls = engines[0].take_outgoing();
        assert!(
            polls
                .iter()
                .any(|(to, m)| *to == SiteId::new(2)
                    && matches!(m, TracingMessage::RoundPoll { .. })),
            "newcomer polled into the open round"
        );
        for (to, message) in polls {
            engines
                .iter_mut()
                .find(|e| e.site() == to)
                .unwrap()
                .on_message(message);
        }
        // Site 1's original poll was withheld (lost); re-deliver it.
        let open_round = engines[0].rounds_started();
        engines[1].on_message(TracingMessage::RoundPoll { round: open_round });
        pump(&mut engines, &[]);
        assert_eq!(engines[1].take_verdicts(), vec![obj_addr]);
    }

    #[test]
    fn message_sizes_scale_with_report_content() {
        let small = TracingMessage::Sweep { garbage: vec![] };
        let big = TracingMessage::Report {
            site: SiteId::new(1),
            epoch: 1,
            ack_round: None,
            vertices: vec![(VertexId::site_root(1), true, vec![GlobalAddr::new(2, 2); 8])],
            transfers_sent: vec![((GlobalAddr::new(1, 1), GlobalAddr::new(2, 2)), 3)],
            transfers_received: vec![],
        };
        assert!(big.size_hint() > small.size_hint());
        assert_eq!(big.label(), "trace-report");
        assert_eq!(small.label(), "trace-sweep");
        assert_eq!(TracingMessage::RoundPoll { round: 1 }.label(), "trace-poll");
    }
}
