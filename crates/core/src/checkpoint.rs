//! Durable engine state: what a [`CausalEngine`] writes into a checkpoint
//! and restores after a crash.
//!
//! The checkpoint captures the engine's *logical* state exhaustively — the
//! per-vertex event counters, the log `DK`, the circulated-closure memo, the
//! out-edge view, the lazy-rule holder bookkeeping and the verdict history.
//! The out-edge refcount index is derived data and rebuilt on restore.
//!
//! A checkpoint is meant to be taken at a quiescent point of the site's own
//! processing — after the runtime has drained outgoing messages and applied
//! pending verdicts — but queued items are captured anyway so that
//! `restore(checkpoint(e)) == e` holds unconditionally.

use std::collections::{BTreeMap, BTreeSet};

use ggd_types::{DependencyVector, GlobalAddr, SiteId, VertexId};

use crate::engine::{EngineStats, Outgoing};
use crate::log::DkLog;

/// The complete durable state of one [`CausalEngine`].
///
/// [`CausalEngine`]: crate::CausalEngine
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCheckpoint {
    /// The site the engine runs on.
    pub site: SiteId,
    /// Per-vertex log-keeping event counters.
    pub counters: BTreeMap<VertexId, u64>,
    /// The log `DK` of dependency-vector rows plus root knowledge.
    pub log: DkLog,
    /// The last closure circulated per vertex (suppresses re-propagation).
    pub last_closure: BTreeMap<VertexId, DependencyVector>,
    /// The engine's view of its site's out-going inter-site edges.
    pub edges_out: BTreeMap<VertexId, BTreeSet<GlobalAddr>>,
    /// Global roots currently reachable from the site's local root set.
    pub locally_rooted: BTreeSet<VertexId>,
    /// Per remote target: local holder objects recorded by the receive rule.
    pub inbound_holders: BTreeMap<GlobalAddr, BTreeSet<VertexId>>,
    /// Statically designated actual roots.
    pub static_roots: BTreeSet<VertexId>,
    /// Every garbage verdict ever produced (blocks re-detection).
    pub detected: BTreeSet<GlobalAddr>,
    /// Verdicts produced but not yet drained by the runtime.
    pub pending_verdicts: Vec<GlobalAddr>,
    /// Control messages queued but not yet drained by the runtime.
    pub outgoing: Vec<Outgoing>,
    /// Accumulated statistics.
    pub stats: EngineStats,
}
