//! The per-site log `DK` of dependency vectors and the root knowledge that
//! travels with them.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use ggd_types::{DependencyVector, VertexId};

/// A dependency vector bundled with *root knowledge*: for each vertex it
/// mentions, whether that vertex was an actual root of the global root graph
/// as of the vertex's own event counter.
///
/// The paper's garbage test (Fig. 6) needs the predicate `root(k)` to be
/// evaluable wherever the test runs. Site-root anchors are roots by
/// construction; for global roots that are (dynamically) reachable from
/// their own site's local root set, the status is stamped by the hosting
/// site and carried with every vector so that the knowledge arrives no later
/// than the entries that depend on it. Newer stamps (higher `as_of` event
/// index) supersede older ones, so losing local-rootedness eventually
/// propagates too.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RootedVector {
    /// The dependency vector itself.
    pub vector: DependencyVector,
    /// Root-status stamps: vertex → (as-of event index, is-actual-root).
    pub root_flags: BTreeMap<VertexId, (u64, bool)>,
}

impl RootedVector {
    /// Creates an empty vector with no root knowledge.
    pub fn new() -> Self {
        RootedVector::default()
    }

    /// Creates a rooted vector from its parts.
    pub fn from_vector(vector: DependencyVector) -> Self {
        RootedVector {
            vector,
            root_flags: BTreeMap::new(),
        }
    }

    /// Records a root-status stamp, keeping the most recent one.
    pub fn stamp_root(&mut self, vertex: VertexId, as_of: u64, is_root: bool) -> bool {
        match self.root_flags.get(&vertex) {
            Some(&(existing, _)) if existing >= as_of => false,
            _ => {
                self.root_flags.insert(vertex, (as_of, is_root));
                true
            }
        }
    }

    /// Merges another rooted vector into this one (vector join plus
    /// freshest-stamp-wins root knowledge). Returns whether anything changed.
    pub fn merge(&mut self, other: &RootedVector) -> bool {
        let mut changed = self.vector.merge(&other.vector);
        for (&vertex, &(as_of, is_root)) in &other.root_flags {
            changed |= self.stamp_root(vertex, as_of, is_root);
        }
        changed
    }

    /// True when, according to the freshest knowledge held here, `vertex` is
    /// an actual root of the global root graph. Site-root anchors are always
    /// actual roots.
    pub fn is_root(&self, vertex: VertexId) -> bool {
        if vertex.is_site_root() {
            return true;
        }
        self.root_flags
            .get(&vertex)
            .map(|&(_, is_root)| is_root)
            .unwrap_or(false)
    }
}

impl fmt::Display for RootedVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.vector)?;
        let roots: Vec<String> = self
            .root_flags
            .iter()
            .filter(|(_, &(_, r))| r)
            .map(|(v, _)| v.to_string())
            .collect();
        if !roots.is_empty() {
            write!(f, " roots[{}]", roots.join(","))?;
        }
        Ok(())
    }
}

/// The paper's per-vertex log `DK`: for every vertex of the global root
/// graph this site has heard of, the best locally-held approximation of the
/// dependency vector of that vertex's latest log-keeping event (§3.3, item 1
/// of the algorithm summary).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DkLog {
    rows: BTreeMap<VertexId, RootedVector>,
    root_flags: BTreeMap<VertexId, (u64, bool)>,
}

impl DkLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        DkLog::default()
    }

    /// Read access to the row held for `vertex` (empty if never touched).
    pub fn row(&self, vertex: VertexId) -> Option<&RootedVector> {
        self.rows.get(&vertex)
    }

    /// Mutable access to the row held for `vertex`, creating it if needed.
    pub fn row_mut(&mut self, vertex: VertexId) -> &mut RootedVector {
        self.rows.entry(vertex).or_default()
    }

    /// Iterates over all rows in key order.
    pub fn rows(&self) -> impl Iterator<Item = (VertexId, &RootedVector)> {
        self.rows.iter().map(|(&v, r)| (v, r))
    }

    /// Number of rows currently held.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the log holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Records a root-status stamp in the log-wide root knowledge.
    pub fn stamp_root(&mut self, vertex: VertexId, as_of: u64, is_root: bool) -> bool {
        match self.root_flags.get(&vertex) {
            Some(&(existing, _)) if existing >= as_of => false,
            _ => {
                self.root_flags.insert(vertex, (as_of, is_root));
                true
            }
        }
    }

    /// Merges the root knowledge carried by an incoming vector.
    pub fn absorb_root_flags(&mut self, incoming: &RootedVector) -> bool {
        let mut changed = false;
        for (&vertex, &(as_of, is_root)) in &incoming.root_flags {
            changed |= self.stamp_root(vertex, as_of, is_root);
        }
        changed
    }

    /// True when `vertex` is, per the freshest knowledge in this log, an
    /// actual root of the global root graph.
    pub fn is_root(&self, vertex: VertexId) -> bool {
        if vertex.is_site_root() {
            return true;
        }
        self.root_flags
            .get(&vertex)
            .map(|&(_, is_root)| is_root)
            .unwrap_or(false)
    }

    /// The current root-status stamps (used when building outgoing vectors).
    pub fn root_flags(&self) -> &BTreeMap<VertexId, (u64, bool)> {
        &self.root_flags
    }

    /// Compacts the log against a set of *dead* vertices (local vertices
    /// whose garbage verdict is final): their rows are dropped, entries
    /// keyed by them are removed from every remaining row, and their
    /// root-status stamps are forgotten. Soundness rests on what a verdict
    /// means — a detected vertex is provably unreachable from every actual
    /// root, so an entry keyed by it can never witness a *real* live root
    /// path; it can only be stale conservatism (a placeholder or root stamp
    /// that destruction news would eventually revoke anyway). Dropping it
    /// anticipates that revocation. Returns the number of rows dropped.
    pub fn prune_vertices(&mut self, dead: &std::collections::BTreeSet<VertexId>) -> usize {
        let before = self.rows.len();
        self.rows.retain(|vertex, _| !dead.contains(vertex));
        for row in self.rows.values_mut() {
            for &vertex in dead {
                row.vector.set(vertex, ggd_types::Timestamp::Never);
                row.root_flags.remove(&vertex);
            }
        }
        for vertex in dead {
            self.root_flags.remove(vertex);
        }
        before - self.rows.len()
    }

    /// Drops every root-status stamp — log-level and per-row — for
    /// vertices *not* in `keep`. Returns the number of stamps dropped.
    ///
    /// Root stamps are only ever consulted for vertices carrying a *live*
    /// entry in some closure, and every closure entry originates in a
    /// row's vector entry, so a stamp for a vertex no row mentions is pure
    /// dead weight — yet, left alone, the stamp map grows by one entry for
    /// every global root that ever existed (it rides on every outgoing
    /// payload, so the creep multiplies into message and WAL bytes; the
    /// soak test pins this). The caller supplies the keep-set so engine
    /// bookkeeping (edges, holders, local roots) can be included
    /// conservatively.
    pub fn retain_stamps(&mut self, keep: &std::collections::BTreeSet<VertexId>) -> usize {
        let before: usize = self.root_flags.len()
            + self
                .rows
                .values()
                .map(|row| row.root_flags.len())
                .sum::<usize>();
        self.root_flags.retain(|vertex, _| keep.contains(vertex));
        for row in self.rows.values_mut() {
            row.root_flags.retain(|vertex, _| keep.contains(vertex));
        }
        before
            - self.root_flags.len()
            - self
                .rows
                .values()
                .map(|row| row.root_flags.len())
                .sum::<usize>()
    }

    /// Drops whole rows without touching entries keyed by their subjects in
    /// other rows — the compaction step for dead *remote* rows, whose
    /// tombstone-only contents are safe to forget but whose subject may
    /// still be mentioned (as a tombstone) elsewhere. Returns the number of
    /// rows dropped.
    pub fn drop_rows(&mut self, subjects: &std::collections::BTreeSet<VertexId>) -> usize {
        let before = self.rows.len();
        self.rows.retain(|vertex, _| !subjects.contains(vertex));
        before - self.rows.len()
    }

    /// The paper's `ComputeV` (Fig. 6): reconstructs the best currently
    /// reconstructible approximation of the full vector-time of `vertex`'s
    /// latest log-keeping event by transitively expanding the locally held
    /// rows. The expansion only recurses through *live* entries (destroyed
    /// entries stop the recursion, exactly as the `¬A(α)` guard does in the
    /// paper), but the destroyed entries encountered along the way are kept
    /// in the result as tombstones: propagated vectors must carry
    /// destruction news, otherwise stale live entries held by other sites
    /// could never be revoked (the receiving side merges monotonically).
    pub fn closure(&self, vertex: VertexId) -> DependencyVector {
        let mut v = DependencyVector::new();
        let mut expanded = std::collections::BTreeSet::new();
        let mut stack: Vec<VertexId> = vec![vertex];
        while let Some(p) = stack.pop() {
            if !expanded.insert(p) {
                continue;
            }
            let Some(row) = self.rows.get(&p) else {
                continue;
            };
            for (q, ts) in row.vector.iter() {
                v.merge_entry(q, ts);
                if v.get(q).is_live() && !expanded.contains(&q) {
                    stack.push(q);
                }
            }
        }
        // The subject's own entry reflects its own latest event, never a
        // second-hand one.
        if let Some(row) = self.rows.get(&vertex) {
            v.set(vertex, row.vector.get(vertex));
        }
        v
    }

    /// True when every live, non-root *direct* in-edge entry recorded in the
    /// subject's own row is *resolved*: the log holds at least some shipped
    /// knowledge of that neighbour's dependency vector, rather than only a
    /// bare lazy placeholder created at export time. Unresolved direct
    /// entries veto a garbage verdict (safety first: wait until the holder
    /// of the inbound path has been heard from at least once). Transitive
    /// entries need no separate resolution — they were, by construction,
    /// taken from a neighbour's shipped vector.
    pub fn direct_live_entries_resolved(&self, subject: VertexId) -> bool {
        let Some(row) = self.rows.get(&subject) else {
            return true;
        };
        row.vector
            .iter()
            .filter(|(q, ts)| *q != subject && ts.is_live() && !self.is_root(*q))
            .all(|(q, _)| {
                self.rows
                    .get(&q)
                    .map(|r| !r.vector.is_empty())
                    .unwrap_or(false)
            })
    }
}

impl fmt::Display for DkLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (vertex, row) in &self.rows {
            writeln!(f, "DK[{vertex}] = {row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggd_types::Timestamp;

    fn v(site: u32, obj: u64) -> VertexId {
        VertexId::object(site, obj)
    }

    #[test]
    fn rooted_vector_merges_and_stamps() {
        let mut a = RootedVector::new();
        a.vector.set(v(1, 1), Timestamp::created(1));
        assert!(a.stamp_root(v(1, 1), 1, true));
        assert!(!a.stamp_root(v(1, 1), 1, false)); // stale stamp ignored
        assert!(a.is_root(v(1, 1)));
        assert!(a.is_root(VertexId::site_root(7)));
        assert!(!a.is_root(v(2, 2)));

        let mut b = RootedVector::new();
        b.vector.set(v(2, 2), Timestamp::created(3));
        b.stamp_root(v(1, 1), 5, false);
        assert!(a.merge(&b));
        assert!(!a.is_root(v(1, 1))); // newer stamp wins
        assert_eq!(a.vector.get(v(2, 2)), Timestamp::created(3));
        assert!(!a.merge(&b));
        assert!(!a.to_string().is_empty());
    }

    #[test]
    fn closure_expands_transitively_through_live_entries() {
        let mut log = DkLog::new();
        // c's row: b reaches c.
        log.row_mut(v(3, 1))
            .vector
            .set(v(2, 1), Timestamp::created(1));
        log.row_mut(v(3, 1))
            .vector
            .set(v(3, 1), Timestamp::created(2));
        // b's row: a reaches b.
        log.row_mut(v(2, 1))
            .vector
            .set(v(1, 1), Timestamp::created(4));
        log.row_mut(v(2, 1))
            .vector
            .set(v(2, 1), Timestamp::created(1));

        let closure = log.closure(v(3, 1));
        assert_eq!(closure.get(v(3, 1)), Timestamp::created(2));
        assert_eq!(closure.get(v(2, 1)), Timestamp::created(1));
        assert_eq!(closure.get(v(1, 1)), Timestamp::created(4));
    }

    #[test]
    fn closure_stops_at_destroyed_entries() {
        let mut log = DkLog::new();
        log.row_mut(v(3, 1))
            .vector
            .set(v(2, 1), Timestamp::destroyed(5));
        log.row_mut(v(2, 1))
            .vector
            .set(v(1, 1), Timestamp::created(1));
        let closure = log.closure(v(3, 1));
        // The destroyed entry is kept as a tombstone but not expanded, so
        // nothing reachable only through it contributes a live path.
        assert_eq!(closure.get(v(2, 1)), Timestamp::destroyed(5));
        assert_eq!(closure.get(v(1, 1)), Timestamp::Never);
        assert!(closure.live_support().count() == 0);
    }

    #[test]
    fn closure_terminates_on_cycles() {
        let mut log = DkLog::new();
        log.row_mut(v(1, 1))
            .vector
            .set(v(2, 1), Timestamp::created(1));
        log.row_mut(v(2, 1))
            .vector
            .set(v(1, 1), Timestamp::created(1));
        let closure = log.closure(v(1, 1));
        assert!(closure.get(v(2, 1)).is_live());
        assert!(closure.get(v(1, 1)).is_live() || closure.get(v(1, 1)) == Timestamp::Never);
    }

    #[test]
    fn resolution_requires_knowledge_of_direct_neighbours() {
        let mut log = DkLog::new();
        // Subject t has a live placeholder for q but q's row is unknown.
        let t = v(2, 1);
        let q = v(3, 1);
        log.row_mut(t).vector.set(q, Timestamp::created(1));
        log.row_mut(t).vector.set(t, Timestamp::created(1));
        assert!(!log.direct_live_entries_resolved(t));
        // Once anything of q's vector is known the entry is resolved.
        log.row_mut(q).vector.set(v(1, 1), Timestamp::created(1));
        assert!(log.direct_live_entries_resolved(t));
        // Destroyed or root-keyed entries never block resolution.
        log.row_mut(t).vector.set(v(4, 1), Timestamp::destroyed(2));
        log.row_mut(t)
            .vector
            .set(VertexId::site_root(0), Timestamp::created(1));
        assert!(log.direct_live_entries_resolved(t));
        // A vertex with no row at all is trivially resolved.
        assert!(log.direct_live_entries_resolved(v(9, 9)));
    }

    #[test]
    fn log_level_root_knowledge() {
        let mut log = DkLog::new();
        assert!(log.is_root(VertexId::site_root(0)));
        assert!(!log.is_root(v(1, 1)));
        assert!(log.stamp_root(v(1, 1), 3, true));
        assert!(log.is_root(v(1, 1)));
        assert!(!log.stamp_root(v(1, 1), 2, false));
        assert!(log.is_root(v(1, 1)));
        assert!(log.stamp_root(v(1, 1), 4, false));
        assert!(!log.is_root(v(1, 1)));

        let mut incoming = RootedVector::new();
        incoming.stamp_root(v(1, 1), 9, true);
        assert!(log.absorb_root_flags(&incoming));
        assert!(log.is_root(v(1, 1)));
        assert_eq!(log.root_flags().len(), 1);
    }

    #[test]
    fn display_and_size() {
        let mut log = DkLog::new();
        assert!(log.is_empty());
        log.row_mut(v(1, 1))
            .vector
            .set(v(1, 1), Timestamp::created(1));
        assert_eq!(log.len(), 1);
        assert!(!log.is_empty());
        assert!(log.to_string().contains("DK[s1/o1]"));
        assert!(log.row(v(1, 1)).is_some());
        assert!(log.row(v(9, 9)).is_none());
        assert_eq!(log.rows().count(), 1);
    }
}
