//! The paper's contribution: comprehensive Global Garbage Detection (GGD) by
//! tracking causal dependencies of relevant mutator events, with a lazy
//! log-keeping mechanism (Louboutin & Cahill, ICDCS 1997).
//!
//! # What lives here
//!
//! * [`RootedVector`] — a dependency vector plus the root knowledge that
//!   travels with it on the wire (the paper's `root(·)` predicate made
//!   explicit and dynamic).
//! * [`CausalMessage`] — the single GGD control-message format. A message
//!   whose entry for its sending vertex is destroyed (`Ē`) is an
//!   *edge-destruction* control message; otherwise it is a *propagation* of
//!   the sender's latest dependency vector (§3.3). Edge-creation news is
//!   never sent on its own: it is recorded lazily and bundled (§3.4).
//! * [`CausalEngine`] — the per-site engine: lazy log-keeping, the `Receive`
//!   / `ComputeV` reconstruction of vector-times (Fig. 6), garbage verdicts,
//!   and the finalisation cascade.
//!
//! # How a site uses the engine
//!
//! 1. feed it reference *exports* ([`CausalEngine::on_export`]) and
//!    *third-party sends* ([`CausalEngine::on_third_party_send`]) as the
//!    mutator performs them (no control messages result — this is the lazy
//!    log-keeping);
//! 2. feed it [`ReachabilitySnapshot`]s after local mutation and after every
//!    local collection ([`CausalEngine::apply_snapshot`]); destroyed edges
//!    turn into edge-destruction control messages;
//! 3. deliver incoming [`CausalMessage`]s ([`CausalEngine::on_message`]);
//! 4. drain [`CausalEngine::take_outgoing`] into the transport and
//!    [`CausalEngine::take_verdicts`] into the heap
//!    (`unregister_global_root`).
//!
//! The `ggd-sim` crate wires these steps into a full cluster; the example
//! below drives two engines by hand.
//!
//! ```
//! use ggd_causal::CausalEngine;
//! use ggd_heap::{ObjRef, SiteHeap};
//! use ggd_types::SiteId;
//!
//! // Site 0 holds the root; site 1 holds an exported object.
//! let (s0, s1) = (SiteId::new(0), SiteId::new(1));
//! let mut heap0 = SiteHeap::new(s0);
//! let mut heap1 = SiteHeap::new(s1);
//! let mut eng0 = CausalEngine::new(s0);
//! let mut eng1 = CausalEngine::new(s1);
//!
//! // Site 1 allocates `obj` and exports it to site 0's root.
//! let obj = heap1.alloc();
//! heap1.register_global_root(obj).unwrap();
//! let obj_addr = heap1.addr_of(obj);
//! eng1.on_export(obj_addr, ggd_types::VertexId::SiteRoot(s0));
//! eng1.apply_snapshot(&heap1.snapshot());
//!
//! let root = heap0.alloc_local_root();
//! heap0.add_ref(root, ObjRef::Remote(obj_addr)).unwrap();
//! eng0.apply_snapshot(&heap0.snapshot());
//!
//! // The root drops the reference: an edge-destruction message is produced.
//! heap0.remove_ref(root, ObjRef::Remote(obj_addr)).unwrap();
//! eng0.apply_snapshot(&heap0.snapshot());
//! // One creation announcement (the edge source is a root) and one
//! // edge-destruction message.
//! let out = eng0.take_outgoing();
//! assert_eq!(out.len(), 2);
//!
//! // Delivering it lets site 1 detect the object as garbage.
//! for m in out { eng1.on_message(m.message); }
//! let verdicts = eng1.take_verdicts();
//! assert_eq!(verdicts, vec![obj_addr]);
//! ```

mod checkpoint;
mod engine;
mod log;
mod message;

pub use checkpoint::EngineCheckpoint;
pub use engine::{CausalEngine, EngineStats, Outgoing};
pub use log::{DkLog, RootedVector};
pub use message::CausalMessage;
