//! The single GGD control-message format.

use serde::{Deserialize, Serialize};
use std::fmt;

use ggd_net::{MessageClass, Payload};
use ggd_types::VertexId;

use crate::log::RootedVector;

/// A GGD control message travelling along an edge of the global root graph,
/// from vertex [`from`](CausalMessage::from) to vertex
/// [`to`](CausalMessage::to).
///
/// The paper distinguishes two conceptual kinds of log-keeping control
/// message (§3.1). Both share this representation:
///
/// * **edge-destruction** — the payload's entry for `from` is absent or
///   destroyed (`Ē`): the sender no longer holds an edge to the recipient.
///   Any other (live) entries in the payload are the bundled, lazily logged
///   edge-creation news the sender recorded on the recipient's behalf
///   (§3.4: "multiple edge-creation control messages can be bundled with an
///   edge-destruction control message in one atomic delivery").
/// * **propagation** — the payload's entry for `from` is live: the sender is
///   circulating its own, newly improved dependency vector along its
///   out-going edges so the recipient can tighten its reconstruction of its
///   vector-time (step 3 of the algorithm, §3.3).
///
/// GGD messages are idempotent: delivering the same message twice merges the
/// same knowledge twice, which the receiving engine detects as "no change".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CausalMessage {
    /// The vertex the message conceptually originates from.
    pub from: VertexId,
    /// The vertex the message is addressed to (always hosted by the
    /// destination site).
    pub to: VertexId,
    /// The dependency vector (plus root knowledge) being shipped.
    pub payload: RootedVector,
}

impl CausalMessage {
    /// True when this is an edge-destruction control message.
    pub fn is_destruction(&self) -> bool {
        !self.payload.vector.get(self.from).is_live()
    }
}

impl fmt::Display for CausalMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.is_destruction() {
            "destroy"
        } else {
            "propagate"
        };
        write!(f, "{kind} {} -> {}: {}", self.from, self.to, self.payload)
    }
}

impl Payload for CausalMessage {
    fn class(&self) -> MessageClass {
        MessageClass::Control
    }

    fn label(&self) -> &'static str {
        if self.is_destruction() {
            "edge-destruction"
        } else {
            "vector-propagation"
        }
    }

    fn size_hint(&self) -> usize {
        // Rough wire size: one (vertex id, timestamp) pair per entry plus
        // the root stamps and the two endpoint ids.
        32 + 24 * self.payload.vector.len() + 16 * self.payload.root_flags.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggd_types::Timestamp;

    fn v(site: u32, obj: u64) -> VertexId {
        VertexId::object(site, obj)
    }

    #[test]
    fn kind_is_derived_from_the_sender_entry() {
        let mut payload = RootedVector::new();
        payload.vector.set(v(1, 1), Timestamp::created(2));
        let prop = CausalMessage {
            from: v(1, 1),
            to: v(2, 1),
            payload: payload.clone(),
        };
        assert!(!prop.is_destruction());
        assert_eq!(prop.label(), "vector-propagation");
        assert_eq!(prop.class(), MessageClass::Control);
        assert!(prop.to_string().contains("propagate"));

        payload.vector.set(v(1, 1), Timestamp::destroyed(3));
        let destroy = CausalMessage {
            from: v(1, 1),
            to: v(2, 1),
            payload,
        };
        assert!(destroy.is_destruction());
        assert_eq!(destroy.label(), "edge-destruction");
        assert!(destroy.to_string().contains("destroy"));
        assert!(destroy.size_hint() > 32);
    }

    #[test]
    fn missing_sender_entry_counts_as_destruction() {
        let msg = CausalMessage {
            from: v(1, 1),
            to: v(2, 1),
            payload: RootedVector::new(),
        };
        assert!(msg.is_destruction());
    }
}
