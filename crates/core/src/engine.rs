//! The per-site causal GGD engine: lazy log-keeping plus the `Receive` /
//! `ComputeV` reconstruction of vector-times (Fig. 6 of the paper).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ggd_heap::{EdgeDelta, ReachabilitySnapshot};
use ggd_types::{DependencyVector, GlobalAddr, SiteId, Timestamp, VertexId};

use crate::checkpoint::EngineCheckpoint;
use crate::log::{DkLog, RootedVector};
use crate::message::CausalMessage;

/// A control message queued by the engine, together with its destination
/// site. The caller (normally `ggd-sim`) moves these onto the transport.
#[derive(Debug, Clone, PartialEq)]
pub struct Outgoing {
    /// Site hosting the destination vertex.
    pub to_site: SiteId,
    /// The control message itself.
    pub message: CausalMessage,
}

/// Counters describing what the engine has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EngineStats {
    /// Edge-creation log-keeping events recorded (lazily, no messages).
    pub edge_creations: u64,
    /// Edge-destruction log-keeping events recorded.
    pub edge_destructions: u64,
    /// Reference exports / third-party sends recorded by the lazy rules.
    pub lazy_records: u64,
    /// Edge-destruction control messages queued.
    pub destructions_sent: u64,
    /// Vector-propagation control messages queued.
    pub propagations_sent: u64,
    /// Control messages received.
    pub messages_received: u64,
    /// Garbage verdicts produced.
    pub verdicts: u64,
    /// DkLog compaction passes run (the checkpoint path runs one per
    /// checkpoint).
    pub compaction_runs: u64,
    /// DkLog rows dropped by compaction, cumulative.
    pub compaction_rows_dropped: u64,
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "creations={} destructions={} sent={}+{} recv={} verdicts={}",
            self.edge_creations,
            self.edge_destructions,
            self.destructions_sent,
            self.propagations_sent,
            self.messages_received,
            self.verdicts
        )
    }
}

/// The causal GGD engine of one site.
///
/// See the crate-level documentation for the full protocol and a worked
/// example; in short the engine consumes mutator-side lazy log-keeping
/// events ([`CausalEngine::on_export`], [`CausalEngine::on_third_party_send`]),
/// reachability snapshots ([`CausalEngine::apply_snapshot`]) and incoming
/// control messages ([`CausalEngine::on_message`]), and produces outgoing
/// control messages and garbage verdicts.
#[derive(Debug, Clone)]
pub struct CausalEngine {
    site: SiteId,
    counters: BTreeMap<VertexId, u64>,
    log: DkLog,
    last_closure: BTreeMap<VertexId, DependencyVector>,
    edges_out: BTreeMap<VertexId, BTreeSet<GlobalAddr>>,
    /// Per-target count of local vertices holding an edge to it — the
    /// O(1) answer to "does this site still reach `target`?" on the delta
    /// path. Kept in lockstep with `edges_out`.
    edge_refcounts: BTreeMap<GlobalAddr, u32>,
    locally_rooted: BTreeSet<VertexId>,
    inbound_holders: BTreeMap<GlobalAddr, BTreeSet<VertexId>>,
    static_roots: BTreeSet<VertexId>,
    detected: BTreeSet<GlobalAddr>,
    pending_verdicts: Vec<GlobalAddr>,
    outgoing: Vec<Outgoing>,
    stats: EngineStats,
}

impl CausalEngine {
    /// Creates the engine for `site`.
    pub fn new(site: SiteId) -> Self {
        CausalEngine {
            site,
            counters: BTreeMap::new(),
            log: DkLog::new(),
            last_closure: BTreeMap::new(),
            edges_out: BTreeMap::new(),
            edge_refcounts: BTreeMap::new(),
            locally_rooted: BTreeSet::new(),
            inbound_holders: BTreeMap::new(),
            static_roots: BTreeSet::new(),
            detected: BTreeSet::new(),
            pending_verdicts: Vec::new(),
            outgoing: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    /// The site this engine runs on.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The vertex standing for this site's local root set.
    pub fn anchor(&self) -> VertexId {
        VertexId::SiteRoot(self.site)
    }

    /// Read access to the engine's log `DK` (used to reproduce Figure 8 of
    /// the paper and by tests).
    pub fn log(&self) -> &DkLog {
        &self.log
    }

    /// Current per-vertex event counters.
    pub fn counter(&self, vertex: VertexId) -> u64 {
        self.counters.get(&vertex).copied().unwrap_or(0)
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Registers a vertex as a statically designated actual root of the
    /// global root graph (a well-known persistent root). Site anchors are
    /// roots automatically and need no registration.
    pub fn register_designated_root(&mut self, vertex: VertexId) {
        self.static_roots.insert(vertex);
    }

    /// Drains the control messages queued since the last call.
    pub fn take_outgoing(&mut self) -> Vec<Outgoing> {
        std::mem::take(&mut self.outgoing)
    }

    /// True when the engine has queued control messages.
    pub fn has_outgoing(&self) -> bool {
        !self.outgoing.is_empty()
    }

    /// Drains the garbage verdicts produced since the last call. Each entry
    /// is a local object that is provably no longer remotely reachable and
    /// may be removed from the heap's global root set.
    pub fn take_verdicts(&mut self) -> Vec<GlobalAddr> {
        std::mem::take(&mut self.pending_verdicts)
    }

    /// All verdicts ever produced by this engine.
    pub fn detected(&self) -> impl Iterator<Item = GlobalAddr> + '_ {
        self.detected.iter().copied()
    }

    // ------------------------------------------------------------------
    // Durability: checkpoint, restore, compaction
    // ------------------------------------------------------------------

    /// Captures the engine's complete durable state. The derived
    /// out-edge refcount index is not included; [`CausalEngine::restore`]
    /// rebuilds it.
    pub fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint {
            site: self.site,
            counters: self.counters.clone(),
            log: self.log.clone(),
            last_closure: self.last_closure.clone(),
            edges_out: self.edges_out.clone(),
            locally_rooted: self.locally_rooted.clone(),
            inbound_holders: self.inbound_holders.clone(),
            static_roots: self.static_roots.clone(),
            detected: self.detected.clone(),
            pending_verdicts: self.pending_verdicts.clone(),
            outgoing: self.outgoing.clone(),
            stats: self.stats,
        }
    }

    /// Rebuilds an engine from a checkpoint, such that
    /// `CausalEngine::restore(e.checkpoint())` is indistinguishable from
    /// `e` under every public operation.
    pub fn restore(checkpoint: EngineCheckpoint) -> Self {
        let mut engine = CausalEngine {
            site: checkpoint.site,
            counters: checkpoint.counters,
            log: checkpoint.log,
            last_closure: checkpoint.last_closure,
            edges_out: checkpoint.edges_out,
            edge_refcounts: BTreeMap::new(),
            locally_rooted: checkpoint.locally_rooted,
            inbound_holders: checkpoint.inbound_holders,
            static_roots: checkpoint.static_roots,
            detected: checkpoint.detected,
            pending_verdicts: checkpoint.pending_verdicts,
            outgoing: checkpoint.outgoing,
            stats: checkpoint.stats,
        };
        engine.rebuild_edge_refcounts();
        engine
    }

    /// Compacts the log against the engine's *stable cutoff*, in two parts:
    ///
    /// 1. **Local detected vertices.** A detected vertex is provably
    ///    unreachable from every actual root and its verdict is final
    ///    ([`CausalEngine::detected`] blocks re-detection forever), so the
    ///    row kept on its behalf, the entries keyed by it in other rows and
    ///    its root-status stamps can only ever contribute stale
    ///    conservatism.
    /// 2. **Dead remote rows.** A row held on a remote vertex's behalf
    ///    whose entries are all tombstones, while this site holds no edge
    ///    to the vertex and no receive-rule holder bookkeeping for it, is
    ///    pure destruction history. Dropping it can only lose tombstones
    ///    and resolution knowledge, both of which push the garbage test
    ///    towards *keeping* objects (an absent row blocks
    ///    `direct_live_entries_resolved`, and a lost tombstone leaves a
    ///    stale live entry standing) — never towards an unsafe verdict.
    ///
    /// Together they bound log growth under churn: the log tracks the
    /// *live* cross-site graph, not the history of every object that ever
    /// crossed a site boundary. The checkpoint path calls this.
    ///
    /// Returns the number of rows dropped.
    pub fn compact_detected(&mut self) -> usize {
        let mut dead: BTreeSet<VertexId> = self
            .detected
            .iter()
            .map(|&addr| VertexId::Object(addr))
            .collect();
        let mut dropped = if dead.is_empty() {
            0
        } else {
            for (_, holders) in self.inbound_holders.iter_mut() {
                holders.retain(|holder| !dead.contains(holder));
            }
            self.inbound_holders
                .retain(|_, holders| !holders.is_empty());
            self.log.prune_vertices(&dead)
        };

        let dead_remote: BTreeSet<VertexId> = self
            .log
            .rows()
            .filter(|(vertex, row)| {
                let VertexId::Object(addr) = *vertex else {
                    return false;
                };
                addr.site() != self.site
                    && row.vector.iter().all(|(_, ts)| !ts.is_live())
                    && !self.edge_refcounts.contains_key(&addr)
                    && !self.inbound_holders.contains_key(&addr)
            })
            .map(|(vertex, _)| vertex)
            .collect();
        dropped += self.log.drop_rows(&dead_remote);

        // 3. Inert local self-rows: the receive rule's `bump` creates a row
        // for every local *holder* object (its own counter entry, nothing
        // else). Once the holder is out of every inbound-holder set, holds
        // no tracked out-edges and is not locally rooted, that row carries
        // no cross-vertex knowledge — its single self entry only freshens
        // the holder's own counter in closures passing through stale
        // entries keyed by it. Exported objects' rows always carry their
        // recipient placeholders, so no global root's row can match this
        // shape.
        let inert_local: BTreeSet<VertexId> = self
            .log
            .rows()
            .filter(|(vertex, row)| {
                let VertexId::Object(addr) = *vertex else {
                    return false;
                };
                addr.site() == self.site
                    && row.vector.len() == 1
                    && row.vector.get(*vertex).is_live()
                    && row.root_flags.is_empty()
                    && !self.locally_rooted.contains(vertex)
                    && !self.edges_out.contains_key(vertex)
                    && !self
                        .inbound_holders
                        .values()
                        .any(|holders| holders.contains(vertex))
            })
            .map(|(vertex, _)| vertex)
            .collect();
        dropped += self.log.drop_rows(&inert_local);

        // 4. Stale root-status stamps. A stamp is only consulted for
        // vertices carrying a *live* entry in a closure, and every closure
        // entry originates in a row's vector entry — so once no kept row
        // mentions a vertex (and no edge or holder bookkeeping still
        // tracks it), its stamp can never influence a garbage test here,
        // and no outgoing payload of this engine can carry a live entry
        // that would need it bundled. Dropping it bounds the stamp map by
        // the live cross-site graph instead of the history of every global
        // root that ever existed.
        let mut keep: BTreeSet<VertexId> = BTreeSet::new();
        for (vertex, row) in self.log.rows() {
            keep.insert(vertex);
            keep.extend(row.vector.iter().map(|(q, _)| q));
        }
        keep.extend(self.edge_refcounts.keys().map(|&a| VertexId::Object(a)));
        keep.extend(self.inbound_holders.keys().map(|&a| VertexId::Object(a)));
        keep.extend(self.inbound_holders.values().flatten().copied());
        keep.extend(self.locally_rooted.iter().copied());
        keep.extend(self.static_roots.iter().copied());
        self.log.retain_stamps(&keep);

        // The circulated-closure memos of every dropped subject are equally
        // final.
        dead.extend(dead_remote);
        dead.extend(inert_local);
        if !dead.is_empty() {
            self.last_closure.retain(|vertex, _| !dead.contains(vertex));
        }
        self.stats.compaction_runs += 1;
        self.stats.compaction_rows_dropped += dropped as u64;
        dropped
    }

    /// Retires every trace of a site that left the fleet through a
    /// *planned departure* — the vector-retirement step of elastic
    /// membership (ROADMAP item 3, first concrete instance).
    ///
    /// By the time this runs, the departure protocol has already (a)
    /// quiesced the cluster, so no message from the departed site is in
    /// flight, and (b) severed this site's heap references towards the
    /// departed site via the reference handoff, so no real edge in either
    /// direction survives. What remains is pure bookkeeping: rows held on
    /// behalf of departed-hosted vertices, entries keyed by them
    /// (placeholders recorded at export time, holder entries, tombstones),
    /// root-status stamps, and queued messages that can no longer be
    /// delivered. All of it is dropped, exactly as
    /// [`CausalEngine::compact_detected`] drops finally-dead vertices: an
    /// entry keyed by a departed vertex can never again witness a real live
    /// root path, because the departed site's objects no longer exist.
    ///
    /// Removing live entries can only shrink closures, so local subjects
    /// are re-evaluated for newly exposed garbage afterwards — objects kept
    /// alive solely by the departed site's (now re-homed or dissolved)
    /// references fall out here instead of lingering as residual.
    ///
    /// Returns the number of log rows dropped.
    pub fn retire_site(&mut self, departed: SiteId) -> usize {
        debug_assert_ne!(departed, self.site, "a site cannot retire itself");

        // 1. Every departed-hosted vertex this engine has ever heard of.
        let mut dead: BTreeSet<VertexId> = BTreeSet::new();
        dead.insert(VertexId::SiteRoot(departed));
        for (vertex, row) in self.log.rows() {
            if vertex.site() == departed {
                dead.insert(vertex);
            }
            for (q, _) in row.vector.iter() {
                if q.site() == departed {
                    dead.insert(q);
                }
            }
        }
        for &vertex in self.log.root_flags().keys() {
            if vertex.site() == departed {
                dead.insert(vertex);
            }
        }

        // 2. Drop their rows, erase entries keyed by them everywhere, and
        // forget their root stamps.
        let dropped = self.log.prune_vertices(&dead);

        // 3. Auxiliary state: counters and circulated-closure memos for
        // departed subjects, dead entries inside remaining memos, edges and
        // holder bookkeeping towards departed-hosted targets, and queued
        // messages addressed to the departed site.
        self.counters.retain(|vertex, _| vertex.site() != departed);
        self.last_closure
            .retain(|vertex, _| vertex.site() != departed);
        for closure in self.last_closure.values_mut() {
            for &vertex in &dead {
                closure.set(vertex, Timestamp::Never);
            }
        }
        for targets in self.edges_out.values_mut() {
            targets.retain(|addr| addr.site() != departed);
        }
        self.edges_out.retain(|_, targets| !targets.is_empty());
        self.rebuild_edge_refcounts();
        self.inbound_holders
            .retain(|target, _| target.site() != departed);
        self.outgoing.retain(|out| out.to_site != departed);

        // 4. Shrunken closures may expose garbage that only the departed
        // site's references kept alive.
        let subjects: Vec<VertexId> = self
            .log
            .rows()
            .map(|(vertex, _)| vertex)
            .filter(|vertex| matches!(vertex, VertexId::Object(addr) if addr.site() == self.site))
            .collect();
        for vertex in subjects {
            let closure = self.log.closure(vertex);
            self.maybe_declare_garbage(vertex, &closure);
        }
        dropped
    }

    /// True when this engine still mentions `site` anywhere — log rows or
    /// entries, root stamps, closure memos, edges, holder bookkeeping or
    /// queued messages. After [`CausalEngine::retire_site`] this must be
    /// `false` for the departed site; the membership equivalence oracle
    /// pins that.
    pub fn mentions_site(&self, site: SiteId) -> bool {
        self.log.rows().any(|(vertex, row)| {
            vertex.site() == site || row.vector.iter().any(|(q, _)| q.site() == site)
        }) || self.log.root_flags().keys().any(|v| v.site() == site)
            || self.last_closure.iter().any(|(vertex, closure)| {
                vertex.site() == site || closure.iter().any(|(q, _)| q.site() == site)
            })
            || self
                .edges_out
                .values()
                .any(|targets| targets.iter().any(|a| a.site() == site))
            || self.inbound_holders.keys().any(|a| a.site() == site)
            || self.outgoing.iter().any(|out| out.to_site == site)
    }

    // ------------------------------------------------------------------
    // Lazy log-keeping (§3.4)
    // ------------------------------------------------------------------

    /// Lazy rule for exporting a *local* object's reference to a remote
    /// vertex: the paper's "object i sends a copy of its own reference to
    /// object j". The engine records, in the exported object's own row, a
    /// placeholder live entry keyed by the recipient, so that the object
    /// knows it has (at least) that inbound edge. No message is sent.
    pub fn on_export(&mut self, exported: GlobalAddr, recipient: VertexId) {
        debug_assert_eq!(exported.site(), self.site, "exported object must be local");
        let vertex = VertexId::Object(exported);
        self.bump(vertex);
        self.log
            .row_mut(vertex)
            .vector
            .merge_entry(recipient, Timestamp::created(1));
        self.stats.lazy_records += 1;
    }

    /// Lazy rule for a third-party exchange: this site sends to `recipient`
    /// a reference denoting the *remote* object `target` (the paper's
    /// "object i sends to an object j a copy of a reference denoting an
    /// object k"). The engine records the would-be edge `recipient → target`
    /// in the row it keeps on the target's behalf; the knowledge is shipped
    /// to the target later, bundled with an edge-destruction message. No
    /// message is sent now.
    pub fn on_third_party_send(&mut self, target: GlobalAddr, recipient: VertexId) {
        if target.site() == self.site {
            self.on_export(target, recipient);
            return;
        }
        let row = self.log.row_mut(VertexId::Object(target));
        row.vector.merge_entry(recipient, Timestamp::created(1));
        self.stats.lazy_records += 1;
    }

    /// Lazy rule for the *receiving* side of a reference transfer: local
    /// object `recipient` has just received (and stored) a reference to the
    /// remote object `target`. The engine records, in the row it keeps on
    /// the target's behalf, a live entry keyed by the recipient object, and
    /// remembers the holder so that the entry can be marked destroyed — and
    /// shipped, bundled with the edge-destruction message — once this site
    /// as a whole loses its last path to the target. No message is sent now.
    pub fn on_receive_ref(&mut self, recipient: GlobalAddr, target: GlobalAddr) {
        if target.site() == self.site {
            return; // purely local reference, no inter-site edge involved
        }
        debug_assert_eq!(recipient.site(), self.site, "recipient must be local");
        let holder = VertexId::Object(recipient);
        // The hosting site is the authority for this holder's entry: use the
        // holder's own (monotone) event counter so that later destructions
        // and re-acquisitions always supersede older knowledge, wherever it
        // was recorded.
        let n = self.bump(holder);
        self.log
            .row_mut(VertexId::Object(target))
            .vector
            .merge_entry(holder, Timestamp::created(n));
        self.inbound_holders
            .entry(target)
            .or_default()
            .insert(holder);
        self.stats.lazy_records += 1;
    }

    // ------------------------------------------------------------------
    // Snapshots: edge creations / destructions (§3.1)
    // ------------------------------------------------------------------

    /// Applies a reachability snapshot of this site's heap, turning edge
    /// differences into log-keeping events: creations are recorded lazily,
    /// destructions additionally queue edge-destruction control messages. A
    /// global root losing its local-rootedness also propagates its freshened
    /// (no-longer-a-root) vector to its acquaintances.
    pub fn apply_snapshot(&mut self, snapshot: &ReachabilitySnapshot) {
        debug_assert_eq!(snapshot.site(), self.site, "snapshot must be local");

        // 1. Local-rootedness transitions of global roots.
        let mut rootedness_changed = Vec::new();
        let now_rooted: BTreeSet<VertexId> = snapshot
            .global_roots()
            .filter(|&id| snapshot.is_locally_rooted(id))
            .map(|id| VertexId::Object(GlobalAddr::from_parts(self.site, id)))
            .collect();
        let all_current: BTreeSet<VertexId> = snapshot
            .global_roots()
            .map(|id| VertexId::Object(GlobalAddr::from_parts(self.site, id)))
            .collect();
        for vertex in all_current.iter().copied() {
            let was = self.locally_rooted.contains(&vertex);
            let is = now_rooted.contains(&vertex);
            if was != is {
                let n = self.bump(vertex);
                self.log.stamp_root(vertex, n, is);
                rootedness_changed.push(vertex);
            } else if is {
                // Refresh the stamp so outgoing vectors carry it.
                let n = self.counter(vertex).max(1);
                self.log.stamp_root(vertex, n, true);
            }
        }
        self.locally_rooted = now_rooted;

        // 2. Edge differences per local vertex.
        let mut new_edges: BTreeMap<VertexId, BTreeSet<GlobalAddr>> = BTreeMap::new();
        new_edges.insert(self.anchor(), snapshot.edges_of(self.anchor()));
        for vertex in all_current {
            new_edges.insert(vertex, snapshot.edges_of(vertex));
        }

        let mut all_vertices: BTreeSet<VertexId> = self.edges_out.keys().copied().collect();
        all_vertices.extend(new_edges.keys().copied());

        for vertex in all_vertices {
            let old = self.edges_out.remove(&vertex).unwrap_or_default();
            let new = new_edges.get(&vertex).cloned().unwrap_or_default();
            for &target in new.difference(&old) {
                let n = self.bump(vertex);
                self.log
                    .row_mut(VertexId::Object(target))
                    .vector
                    .merge_entry(vertex, Timestamp::created(n));
                self.stats.edge_creations += 1;
                // Deliberate deviation from pure laziness (see DESIGN.md):
                // edges whose source is an actual root are announced to the
                // target right away, so that a concurrent garbage evaluation
                // elsewhere can never miss the newly created root path.
                // Third-party and non-root edge creations stay message-free.
                if vertex.is_site_root() || self.locally_rooted.contains(&vertex) {
                    self.queue_root_announcement(vertex, target, n);
                }
            }
            for &target in old.difference(&new) {
                let n = self.bump(vertex);
                self.log
                    .row_mut(VertexId::Object(target))
                    .vector
                    .set(vertex, Timestamp::destroyed(n));
                self.stats.edge_destructions += 1;
                let still_reached = new_edges.values().any(|targets| targets.contains(&target));
                self.mark_lost_holders(target, still_reached);
                self.queue_destruction(vertex, target);
            }
        }
        self.edges_out = new_edges;
        self.edges_out.retain(|_, targets| !targets.is_empty());
        self.rebuild_edge_refcounts();

        // 3. Vertices whose local-rootedness changed announce their fresh
        // status along their out-going edges: losing it lazily restores
        // comprehensiveness, gaining it promptly preserves safety.
        for vertex in rootedness_changed {
            let closure = self.log.closure(vertex);
            self.propagate_with(vertex, &closure);
            self.last_closure.insert(vertex, closure);
        }
    }

    /// Applies an incremental snapshot delta: the same log-keeping events
    /// [`CausalEngine::apply_snapshot`] derives by re-diffing full edge
    /// sets, but in O(delta) — no edge-map clones, no full-set
    /// differences. The event order (rootedness transitions, then
    /// per-vertex creations before destructions in vertex order, then
    /// rootedness propagation) matches the rescan path exactly, so both
    /// pipelines emit bit-identical control-message streams; the
    /// differential equivalence tests in `ggd-explore` pin that.
    pub fn apply_delta(&mut self, delta: &EdgeDelta) {
        debug_assert_eq!(delta.site(), self.site, "delta must be local");

        // 0. Vertices that left the graph stop being locally rooted without
        // a transition event, mirroring how the rescan path rebuilds its
        // rooted set from a snapshot that no longer mentions them.
        for &id in &delta.removed {
            self.locally_rooted
                .remove(&VertexId::Object(GlobalAddr::from_parts(self.site, id)));
        }

        // 1. Local-rootedness transitions of current global roots.
        let mut rootedness_changed = Vec::new();
        for &(id, is) in &delta.rootedness {
            let vertex = VertexId::Object(GlobalAddr::from_parts(self.site, id));
            let was = self.locally_rooted.contains(&vertex);
            if was != is {
                let n = self.bump(vertex);
                self.log.stamp_root(vertex, n, is);
                rootedness_changed.push(vertex);
                if is {
                    self.locally_rooted.insert(vertex);
                } else {
                    self.locally_rooted.remove(&vertex);
                }
            }
        }

        // 2. Edge events. `edges_out` is brought to its final state first,
        // so the lost-holder check ("does any local vertex still reach the
        // target *after* this change?") sees the same post-state the rescan
        // path's freshly built edge map provides. Only changes that
        // actually alter `edges_out` become events: the rescan path diffs
        // against the engine's *own* edge map, which differs from the
        // heap's cache exactly when garbage finalisation already destroyed
        // a detected vertex's edges ahead of the heap — replaying those
        // would duplicate the finalisation messages.
        let mut events: Vec<(VertexId, Vec<GlobalAddr>, Vec<GlobalAddr>)> =
            Vec::with_capacity(delta.edges.len());
        for part in &delta.edges {
            let targets = self.edges_out.entry(part.vertex).or_default();
            let created: Vec<GlobalAddr> = part
                .created
                .iter()
                .copied()
                .filter(|&target| targets.insert(target))
                .collect();
            let destroyed: Vec<GlobalAddr> = part
                .destroyed
                .iter()
                .copied()
                .filter(|target| targets.remove(target))
                .collect();
            let now_empty = targets.is_empty();
            if now_empty {
                self.edges_out.remove(&part.vertex);
            }
            for &target in &created {
                *self.edge_refcounts.entry(target).or_insert(0) += 1;
            }
            for target in &destroyed {
                self.drop_edge_refcount(*target);
            }
            if !created.is_empty() || !destroyed.is_empty() {
                events.push((part.vertex, created, destroyed));
            }
        }
        for (vertex, created, destroyed) in events {
            for target in created {
                let n = self.bump(vertex);
                self.log
                    .row_mut(VertexId::Object(target))
                    .vector
                    .merge_entry(vertex, Timestamp::created(n));
                self.stats.edge_creations += 1;
                if vertex.is_site_root() || self.locally_rooted.contains(&vertex) {
                    self.queue_root_announcement(vertex, target, n);
                }
            }
            for target in destroyed {
                let n = self.bump(vertex);
                self.log
                    .row_mut(VertexId::Object(target))
                    .vector
                    .set(vertex, Timestamp::destroyed(n));
                self.stats.edge_destructions += 1;
                let still_reached = self.edge_refcounts.contains_key(&target);
                debug_assert_eq!(
                    still_reached,
                    self.edges_out.values().any(|t| t.contains(&target)),
                    "edge refcounts diverged from edges_out"
                );
                self.mark_lost_holders(target, still_reached);
                self.queue_destruction(vertex, target);
            }
        }

        // 3. Fresh rootedness propagates along the (final) out-edges.
        for vertex in rootedness_changed {
            let closure = self.log.closure(vertex);
            self.propagate_with(vertex, &closure);
            self.last_closure.insert(vertex, closure);
        }
    }

    // ------------------------------------------------------------------
    // Receive (Fig. 6)
    // ------------------------------------------------------------------

    /// Processes one incoming GGD control message: the paper's `Receive`
    /// procedure, followed by `ComputeV` and either further propagation or a
    /// garbage verdict.
    pub fn on_message(&mut self, message: CausalMessage) {
        self.stats.messages_received += 1;
        let CausalMessage { from, to, payload } = message;
        if to.site() != self.site {
            // Misrouted message: ignore (robustness over panicking).
            return;
        }
        if let VertexId::Object(addr) = to {
            if self.detected.contains(&addr) {
                // News for a vertex already declared garbage: the object is
                // as good as deleted, so there is nothing to improve and
                // nobody downstream to tell — its out-edges were finalised
                // with explicit destruction messages at detection time.
                // Processing it anyway would re-create the compacted row
                // *without* the vertex's own entry, and re-propagating that
                // row reads as edge-destruction news to every receiver
                // (the sender entry is absent, hence not live), bumping
                // their counters and re-improving their closures — a
                // message livelock that keeps `settle` spinning forever.
                return;
            }
        }
        self.log.absorb_root_flags(&payload);

        let news = payload.vector.get(from);
        let mut changed = false;
        if news.is_live() {
            // Propagation: `payload` is the sender's own latest vector.
            changed |= self.log.row_mut(from).merge(&payload);
        } else {
            // Edge destruction: `payload` is the vector the sender kept on
            // the recipient's behalf (bundled lazy edge-creation news).
            changed |= self.log.row_mut(to).merge(&payload);
        }
        changed |= self.log.row_mut(to).vector.merge_entry(from, news);

        if changed && !news.is_live() {
            // A (new) edge-destruction event at the recipient vertex.
            self.bump(to);
        }

        let closure = self.log.closure(to);
        let closure_improved = self.last_closure.get(&to) != Some(&closure);
        if closure_improved {
            // New knowledge: circulate the improved approximation of the
            // vector-time along the out-going edges (step 3, §3.3).
            self.propagate_with(to, &closure);
        }
        // Evaluate the garbage test on every receipt. The paper gates it on
        // a no-change receipt as a convergence proxy; here the explicit
        // safety conditions (placeholder resolution and root flags, see
        // DESIGN.md) make the test safe to run eagerly, which removes the
        // dependence on a further message arriving.
        self.maybe_declare_garbage(to, &closure);
        if closure_improved {
            // Remember the circulated closure — by move, not clone; the
            // next receipt compares against it.
            self.last_closure.insert(to, closure);
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// When this site as a whole no longer reaches `target` from any of its
    /// vertices (`still_reached` is the caller's post-state answer), the
    /// placeholder entries recorded for the local objects that once held the
    /// reference are marked destroyed so that the bundled edge-destruction
    /// message supersedes the matching placeholders held at the target's
    /// site.
    fn mark_lost_holders(&mut self, target: GlobalAddr, still_reached: bool) {
        if still_reached {
            return;
        }
        if let Some(holders) = self.inbound_holders.remove(&target) {
            for holder in holders {
                let index = self.bump(holder);
                self.log
                    .row_mut(VertexId::Object(target))
                    .vector
                    .set(holder, Timestamp::destroyed(index));
            }
        }
    }

    /// Recomputes `edge_refcounts` from `edges_out` — used by the rescan
    /// path, which replaces the edge map wholesale.
    fn rebuild_edge_refcounts(&mut self) {
        self.edge_refcounts.clear();
        for targets in self.edges_out.values() {
            for &target in targets {
                *self.edge_refcounts.entry(target).or_insert(0) += 1;
            }
        }
    }

    fn drop_edge_refcount(&mut self, target: GlobalAddr) {
        if let Some(count) = self.edge_refcounts.get_mut(&target) {
            *count -= 1;
            if *count == 0 {
                self.edge_refcounts.remove(&target);
            }
        }
    }

    fn bump(&mut self, vertex: VertexId) -> u64 {
        let counter = self.counters.entry(vertex).or_insert(0);
        *counter += 1;
        let n = *counter;
        self.log
            .row_mut(vertex)
            .vector
            .merge_entry(vertex, Timestamp::created(n));
        n
    }

    fn is_root(&self, vertex: VertexId) -> bool {
        vertex.is_site_root() || self.static_roots.contains(&vertex) || self.log.is_root(vertex)
    }

    fn outgoing_payload(&self, vector: DependencyVector) -> RootedVector {
        let mut payload = RootedVector::from_vector(vector);
        // Bundle exactly the stamps the shipped entries depend on: the
        // receiver only ever consults root status for vertices carrying a
        // live entry in one of its closures, and every such entry arrives
        // inside some payload vector — so stamping the mentioned vertices
        // keeps the "knowledge arrives no later than the entries that
        // depend on it" invariant while bounding the message by the
        // vector's width. Shipping the whole stamp map instead would make
        // every message (and so every WAL record) grow with the number of
        // global roots that ever existed, and would re-teach peers stamps
        // they already compacted away (the soak test pins both).
        let mentioned: Vec<VertexId> = payload.vector.iter().map(|(q, _)| q).collect();
        for vertex in mentioned {
            if let Some(&(as_of, is_root)) = self.log.root_flags().get(&vertex) {
                payload.stamp_root(vertex, as_of, is_root);
            }
            if self.locally_rooted.contains(&vertex) {
                payload.stamp_root(vertex, self.counter(vertex).max(1), true);
            }
        }
        payload
    }

    fn queue_root_announcement(&mut self, from: VertexId, target: GlobalAddr, index: u64) {
        let to = VertexId::Object(target);
        let mut vector = DependencyVector::new();
        vector.set(from, Timestamp::created(index));
        let payload = self.outgoing_payload(vector);
        self.stats.propagations_sent += 1;
        self.outgoing.push(Outgoing {
            to_site: target.site(),
            message: CausalMessage { from, to, payload },
        });
    }

    fn queue_destruction(&mut self, from: VertexId, target: GlobalAddr) {
        let to = VertexId::Object(target);
        let row = self.log.row(to).cloned().unwrap_or_default();
        let mut payload = self.outgoing_payload(row.vector);
        for (vertex, stamp) in row.root_flags {
            payload.stamp_root(vertex, stamp.0, stamp.1);
        }
        self.stats.destructions_sent += 1;
        self.outgoing.push(Outgoing {
            to_site: target.site(),
            message: CausalMessage { from, to, payload },
        });
    }

    /// Circulates `closure` (the vertex's freshly reconstructed vector-time)
    /// along the vertex's out-going edges. The caller supplies the closure
    /// so that neither it nor the target set has to be cloned on the hot
    /// path.
    fn propagate_with(&mut self, vertex: VertexId, closure: &DependencyVector) {
        let Some(targets) = self.edges_out.get(&vertex) else {
            return;
        };
        if targets.is_empty() {
            return;
        }
        // The propagated vector carries the live transitive closure *plus*
        // the destroyed entries of the vertex's own row: receivers merge
        // monotonically (for idempotence), so destruction news must travel
        // with the propagation or stale live entries could never be revoked
        // downstream.
        let mut knowledge = self
            .log
            .row(vertex)
            .map(|row| row.vector.clone())
            .unwrap_or_default();
        knowledge.merge(closure);
        for &target in targets {
            let payload = self.outgoing_payload(knowledge.clone());
            self.stats.propagations_sent += 1;
            self.outgoing.push(Outgoing {
                to_site: target.site(),
                message: CausalMessage {
                    from: vertex,
                    to: VertexId::Object(target),
                    payload,
                },
            });
        }
    }

    fn maybe_declare_garbage(&mut self, vertex: VertexId, closure: &DependencyVector) {
        let VertexId::Object(addr) = vertex else {
            return; // Anchors are never garbage.
        };
        if self.detected.contains(&addr) {
            return;
        }
        let has_live_root = closure
            .live_support()
            .any(|q| q != vertex && self.is_root(q));
        if has_live_root {
            return;
        }
        if !self.log.direct_live_entries_resolved(vertex) {
            // Some inbound path is only known as a placeholder: wait for the
            // owning site's vector before concluding (safety first).
            return;
        }
        // Garbage detected: the vertex is no longer reachable from any
        // actual root of the global root graph.
        self.detected.insert(addr);
        self.pending_verdicts.push(addr);
        self.stats.verdicts += 1;

        // Finalisation (§3.2): the GGD algorithm itself sends additional
        // edge-destruction messages for the out-going edges of the detected
        // garbage, so that whole disconnected subgraphs collapse without
        // waiting for local collections.
        let n = self.bump(vertex);
        if let Some(targets) = self.edges_out.remove(&vertex) {
            for target in targets {
                self.drop_edge_refcount(target);
                let to = VertexId::Object(target);
                self.log
                    .row_mut(to)
                    .vector
                    .set(vertex, Timestamp::destroyed(n));
                self.stats.edge_destructions += 1;
                self.queue_destruction(vertex, target);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggd_heap::{ObjRef, SiteHeap};

    fn addr(site: u32, obj: u64) -> GlobalAddr {
        GlobalAddr::new(site, obj)
    }

    /// Delivers every queued message between two engines until quiescence.
    fn run_to_quiescence(engines: &mut BTreeMap<SiteId, CausalEngine>) {
        loop {
            let mut queued: Vec<Outgoing> = Vec::new();
            for engine in engines.values_mut() {
                queued.extend(engine.take_outgoing());
            }
            if queued.is_empty() {
                break;
            }
            for out in queued {
                if let Some(engine) = engines.get_mut(&out.to_site) {
                    engine.on_message(out.message);
                }
            }
        }
    }

    #[test]
    fn export_records_placeholder_inbound_edge() {
        let mut engine = CausalEngine::new(SiteId::new(1));
        engine.on_export(addr(1, 5), VertexId::site_root(0));
        let row = engine.log().row(VertexId::object(1, 5)).unwrap();
        assert!(row.vector.get(VertexId::site_root(0)).is_live());
        assert!(row.vector.get(VertexId::object(1, 5)).is_live());
        assert_eq!(engine.stats().lazy_records, 1);
    }

    #[test]
    fn third_party_send_records_on_behalf_of_target() {
        let mut engine = CausalEngine::new(SiteId::new(0));
        engine.on_third_party_send(addr(3, 1), VertexId::object(4, 1));
        let row = engine.log().row(VertexId::object(3, 1)).unwrap();
        assert!(row.vector.get(VertexId::object(4, 1)).is_live());
        // Local targets are handled by the export rule instead.
        let mut local = CausalEngine::new(SiteId::new(3));
        local.on_third_party_send(addr(3, 1), VertexId::object(4, 1));
        assert!(local
            .log()
            .row(VertexId::object(3, 1))
            .unwrap()
            .vector
            .get(VertexId::object(3, 1))
            .is_live());
    }

    #[test]
    fn snapshot_diff_creates_and_destroys_edges() {
        let site = SiteId::new(0);
        let mut heap = SiteHeap::new(site);
        let mut engine = CausalEngine::new(site);
        let root = heap.alloc_local_root();
        heap.add_ref(root, ObjRef::Remote(addr(1, 1))).unwrap();
        engine.apply_snapshot(&heap.snapshot());
        assert_eq!(engine.stats().edge_creations, 1);
        assert_eq!(engine.counter(engine.anchor()), 1);
        // The edge source is an actual root, so its creation is announced.
        let out = engine.take_outgoing();
        assert_eq!(out.len(), 1);
        assert!(!out[0].message.is_destruction());

        heap.remove_ref(root, ObjRef::Remote(addr(1, 1))).unwrap();
        engine.apply_snapshot(&heap.snapshot());
        assert_eq!(engine.stats().edge_destructions, 1);
        let out = engine.take_outgoing();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to_site, SiteId::new(1));
        assert!(out[0].message.is_destruction());
        assert_eq!(out[0].message.from, engine.anchor());
    }

    #[test]
    fn simple_remote_garbage_is_detected() {
        // Site 0: root -> remote object on site 1. Dropping the reference
        // must lead site 1 to a garbage verdict for the object.
        let s0 = SiteId::new(0);
        let s1 = SiteId::new(1);
        let mut heap0 = SiteHeap::new(s0);
        let mut heap1 = SiteHeap::new(s1);
        let mut engines = BTreeMap::new();
        engines.insert(s0, CausalEngine::new(s0));
        engines.insert(s1, CausalEngine::new(s1));

        let obj = heap1.alloc();
        heap1.register_global_root(obj).unwrap();
        let obj_addr = heap1.addr_of(obj);
        engines
            .get_mut(&s1)
            .unwrap()
            .on_export(obj_addr, VertexId::SiteRoot(s0));
        engines
            .get_mut(&s1)
            .unwrap()
            .apply_snapshot(&heap1.snapshot());

        let root = heap0.alloc_local_root();
        heap0.add_ref(root, ObjRef::Remote(obj_addr)).unwrap();
        engines
            .get_mut(&s0)
            .unwrap()
            .apply_snapshot(&heap0.snapshot());
        run_to_quiescence(&mut engines);
        assert!(engines.get_mut(&s1).unwrap().take_verdicts().is_empty());

        heap0.remove_ref(root, ObjRef::Remote(obj_addr)).unwrap();
        engines
            .get_mut(&s0)
            .unwrap()
            .apply_snapshot(&heap0.snapshot());
        run_to_quiescence(&mut engines);
        let verdicts = engines.get_mut(&s1).unwrap().take_verdicts();
        assert_eq!(verdicts, vec![obj_addr]);
        assert_eq!(engines[&s1].stats().verdicts, 1);
    }

    #[test]
    fn live_object_is_not_declared_garbage_when_another_root_holds_it() {
        // Two roots (sites 0 and 2) both reference the object on site 1.
        // Dropping only one of them must not produce a verdict.
        let s0 = SiteId::new(0);
        let s1 = SiteId::new(1);
        let s2 = SiteId::new(2);
        let mut heap0 = SiteHeap::new(s0);
        let mut heap1 = SiteHeap::new(s1);
        let mut heap2 = SiteHeap::new(s2);
        let mut engines = BTreeMap::new();
        for s in [s0, s1, s2] {
            engines.insert(s, CausalEngine::new(s));
        }

        let obj = heap1.alloc();
        heap1.register_global_root(obj).unwrap();
        let obj_addr = heap1.addr_of(obj);
        let e1 = engines.get_mut(&s1).unwrap();
        e1.on_export(obj_addr, VertexId::SiteRoot(s0));
        e1.on_export(obj_addr, VertexId::SiteRoot(s2));
        e1.apply_snapshot(&heap1.snapshot());

        let root0 = heap0.alloc_local_root();
        heap0.add_ref(root0, ObjRef::Remote(obj_addr)).unwrap();
        engines
            .get_mut(&s0)
            .unwrap()
            .apply_snapshot(&heap0.snapshot());
        let root2 = heap2.alloc_local_root();
        heap2.add_ref(root2, ObjRef::Remote(obj_addr)).unwrap();
        engines
            .get_mut(&s2)
            .unwrap()
            .apply_snapshot(&heap2.snapshot());
        run_to_quiescence(&mut engines);

        heap0.remove_ref(root0, ObjRef::Remote(obj_addr)).unwrap();
        engines
            .get_mut(&s0)
            .unwrap()
            .apply_snapshot(&heap0.snapshot());
        run_to_quiescence(&mut engines);
        assert!(engines.get_mut(&s1).unwrap().take_verdicts().is_empty());

        // Dropping the second root finally makes it garbage.
        heap2.remove_ref(root2, ObjRef::Remote(obj_addr)).unwrap();
        engines
            .get_mut(&s2)
            .unwrap()
            .apply_snapshot(&heap2.snapshot());
        run_to_quiescence(&mut engines);
        assert_eq!(
            engines.get_mut(&s1).unwrap().take_verdicts(),
            vec![obj_addr]
        );
    }

    #[test]
    fn duplicate_messages_are_idempotent() {
        let s0 = SiteId::new(0);
        let s1 = SiteId::new(1);
        let mut heap0 = SiteHeap::new(s0);
        let mut heap1 = SiteHeap::new(s1);
        let mut e0 = CausalEngine::new(s0);
        let mut e1 = CausalEngine::new(s1);

        let obj = heap1.alloc();
        heap1.register_global_root(obj).unwrap();
        let obj_addr = heap1.addr_of(obj);
        e1.on_export(obj_addr, VertexId::SiteRoot(s0));
        e1.apply_snapshot(&heap1.snapshot());

        let root = heap0.alloc_local_root();
        heap0.add_ref(root, ObjRef::Remote(obj_addr)).unwrap();
        e0.apply_snapshot(&heap0.snapshot());
        heap0.remove_ref(root, ObjRef::Remote(obj_addr)).unwrap();
        e0.apply_snapshot(&heap0.snapshot());

        let out = e0.take_outgoing();
        assert_eq!(out.len(), 2, "one creation announcement, one destruction");
        assert!(out.last().unwrap().message.is_destruction());
        // Deliver every message three times, in order.
        for _ in 0..3 {
            for o in &out {
                e1.on_message(o.message.clone());
            }
        }
        let verdicts = e1.take_verdicts();
        assert_eq!(verdicts, vec![obj_addr]);
        assert_eq!(e1.stats().verdicts, 1, "verdict must be produced once");
    }

    #[test]
    fn unresolved_placeholder_blocks_verdict() {
        // Site 1's object was exported to a third party whose vector has
        // never been seen: even if every known edge is destroyed, the engine
        // must not conclude garbage while the placeholder is unresolved.
        let s0 = SiteId::new(0);
        let s1 = SiteId::new(1);
        let mut heap0 = SiteHeap::new(s0);
        let mut heap1 = SiteHeap::new(s1);
        let mut e0 = CausalEngine::new(s0);
        let mut e1 = CausalEngine::new(s1);

        let obj = heap1.alloc();
        heap1.register_global_root(obj).unwrap();
        let obj_addr = heap1.addr_of(obj);
        e1.on_export(obj_addr, VertexId::SiteRoot(s0));
        // The object's reference was also exported to site 9, whose vector
        // never arrives (e.g. it is slow or partitioned away).
        e1.on_export(obj_addr, VertexId::object(9, 1));
        e1.apply_snapshot(&heap1.snapshot());

        let root = heap0.alloc_local_root();
        heap0.add_ref(root, ObjRef::Remote(obj_addr)).unwrap();
        e0.apply_snapshot(&heap0.snapshot());
        heap0.remove_ref(root, ObjRef::Remote(obj_addr)).unwrap();
        e0.apply_snapshot(&heap0.snapshot());
        for out in e0.take_outgoing() {
            e1.on_message(out.message);
        }
        // Deliver a duplicate as well so the "no change" path is exercised.
        assert!(e1.take_verdicts().is_empty());
    }

    #[test]
    fn retire_site_erases_every_trace_and_unblocks_verdicts() {
        // Same setup as `unresolved_placeholder_blocks_verdict`: the object
        // was exported to site 9 whose vector never arrives, so the verdict
        // is vetoed. When site 9 departs through a planned leave, its
        // placeholder entry is retired and the verdict must fall out.
        let s0 = SiteId::new(0);
        let s1 = SiteId::new(1);
        let s9 = SiteId::new(9);
        let mut heap0 = SiteHeap::new(s0);
        let mut heap1 = SiteHeap::new(s1);
        let mut e0 = CausalEngine::new(s0);
        let mut e1 = CausalEngine::new(s1);

        let obj = heap1.alloc();
        heap1.register_global_root(obj).unwrap();
        let obj_addr = heap1.addr_of(obj);
        e1.on_export(obj_addr, VertexId::SiteRoot(s0));
        e1.on_export(obj_addr, VertexId::object(9, 1));
        e1.apply_snapshot(&heap1.snapshot());

        let root = heap0.alloc_local_root();
        heap0.add_ref(root, ObjRef::Remote(obj_addr)).unwrap();
        e0.apply_snapshot(&heap0.snapshot());
        heap0.remove_ref(root, ObjRef::Remote(obj_addr)).unwrap();
        e0.apply_snapshot(&heap0.snapshot());
        for out in e0.take_outgoing() {
            e1.on_message(out.message);
        }
        assert!(e1.take_verdicts().is_empty(), "placeholder vetoes");
        assert!(e1.mentions_site(s9));

        e1.retire_site(s9);
        assert!(!e1.mentions_site(s9), "no trace of the departed site");
        assert_eq!(
            e1.take_verdicts(),
            vec![obj_addr],
            "retiring the departed placeholder unblocks the verdict"
        );
    }

    #[test]
    fn misrouted_message_is_ignored() {
        let mut engine = CausalEngine::new(SiteId::new(0));
        engine.on_message(CausalMessage {
            from: VertexId::site_root(1),
            to: VertexId::object(5, 1),
            payload: RootedVector::new(),
        });
        assert!(engine.take_verdicts().is_empty());
        assert!(!engine.has_outgoing());
        assert_eq!(engine.stats().messages_received, 1);
    }

    #[test]
    fn stats_display_is_nonempty() {
        assert!(!EngineStats::default().to_string().is_empty());
    }
}
