//! Robustness demonstration: the same churning workload is run over networks
//! that drop and duplicate control messages, and then — through the *same*
//! `Cluster` drive loop — over real OS threads. Safety is never compromised;
//! loss only leaves residual garbage (§1/§5 of the paper).
//!
//! ```sh
//! cargo run --example lossy_network
//! ```

use ggd::prelude::*;

fn main() {
    println!("== random churn over an unreliable network (causal collector) ==");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12}",
        "drop p", "dup p", "violations", "residual", "ctrl msgs"
    );
    for (drop_p, dup_p) in [(0.0, 0.0), (0.1, 0.0), (0.3, 0.0), (0.0, 0.3), (0.3, 0.3)] {
        let scenario = workloads::random_churn(4, 120, 42);
        let mut faults = FaultPlan::new();
        if drop_p > 0.0 {
            faults = faults.with_drop_probability(drop_p);
        }
        if dup_p > 0.0 {
            faults = faults.with_duplicate_probability(dup_p);
        }
        let config = ClusterConfig {
            faults,
            seed: 7,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::from_scenario(&scenario, config, CausalCollector::new);
        let report = cluster.run(&scenario);
        println!(
            "{:>10.2} {:>10.2} {:>12} {:>12} {:>12}",
            drop_p,
            dup_p,
            report.safety_violations,
            report.residual_garbage,
            report.control_messages()
        );
    }
    println!();
    println!(
        "safety violations must stay at 0; residual garbage may appear once messages are lost."
    );

    println!();
    println!("== the paper's running example over real OS threads (same Cluster code) ==");
    let scenario = workloads::paper_example();
    let mut cluster =
        Cluster::threaded_from_scenario(&scenario, ClusterConfig::default(), CausalCollector::new);
    let report = cluster.run(&scenario);
    println!("{report}");
    println!(
        "threaded delivery interleaving is scheduler-dependent, yet the outcome matches the \
         simulation: reclaimed = {}, residual = {}, violations = {}",
        report.reclaimed, report.residual_garbage, report.safety_violations
    );
}
