//! The §4 workload: a doubly-linked list spread over k sites is disconnected
//! from its root and must be reclaimed. Prints how many messages each
//! collector needs as k grows — the comparison the paper makes against
//! Schelvis' timestamp packets.
//!
//! ```sh
//! cargo run --release --example linked_list_collapse
//! ```

use ggd::prelude::*;

fn main() {
    println!("== collapsing a doubly-linked list of k elements (one per site) ==");
    println!(
        "{:>4} {:>10} {:>12} {:>12} {:>10}",
        "k", "collector", "ctrl msgs", "reclaimed", "residual"
    );
    for k in [2u32, 4, 8, 16, 24] {
        let scenario = workloads::doubly_linked_list(k);

        let mut causal =
            Cluster::from_scenario(&scenario, ClusterConfig::default(), CausalCollector::new);
        let report = causal.run(&scenario);
        println!(
            "{:>4} {:>10} {:>12} {:>12} {:>10}",
            k,
            report.collector,
            report.control_messages(),
            report.reclaimed,
            report.residual_garbage
        );

        let mut tracing = Cluster::from_scenario(
            &scenario,
            ClusterConfig::default(),
            TracingCollector::factory(scenario.site_count()),
        );
        let report = tracing.run(&scenario);
        println!(
            "{:>4} {:>10} {:>12} {:>12} {:>10}",
            k,
            report.collector,
            report.control_messages(),
            report.reclaimed,
            report.residual_garbage
        );
    }
}
