//! Replays the running example of the paper step by step and dumps the
//! per-site `DK` logs after the run — the information shown in Figures 5
//! and 8 of the paper (up to the renumbering documented in DESIGN.md).
//!
//! ```sh
//! cargo run --example paper_example
//! ```

use ggd::prelude::*;

fn main() {
    let scenario = workloads::paper_example();
    let mut cluster =
        Cluster::from_scenario(&scenario, ClusterConfig::default(), CausalCollector::new);
    let report = cluster.run(&scenario);

    println!("== the global root graph of Figure 3, one object per site ==");
    println!("site 0: object 1 (the actual root)   site 1: object 2");
    println!("site 2: object 3                     site 3: object 4");
    println!();
    println!("{report}");
    println!();
    println!("== per-site DK logs after GGD has quiesced (cf. Figure 8) ==");
    for i in 0..scenario.site_count() {
        let site = SiteId::new(i);
        println!("--- {site}");
        print!("{}", cluster.collector(site).engine().log());
    }
    println!();
    println!("== outcome ==");
    for i in 0..scenario.site_count() {
        let site = SiteId::new(i);
        let heap = cluster.heap(site);
        let survivors: Vec<String> = heap.iter().map(|o| o.id().to_string()).collect();
        println!("{site}: surviving objects: [{}]", survivors.join(", "));
    }
    println!("(only the root object on site 0 must survive)");
}
