//! Quickstart: run the paper's running example under the causal collector
//! and print the resulting report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ggd::prelude::*;

fn main() {
    let scenario = workloads::paper_example();
    let mut cluster =
        Cluster::from_scenario(&scenario, ClusterConfig::default(), CausalCollector::new);
    let report = cluster.run(&scenario);

    println!("== quickstart: the paper's running example (Figures 3-5, 8) ==");
    println!("{report}");
    println!();
    println!(
        "objects 2, 3 and 4 form a distributed cycle that is disconnected when \
         the root drops its edge; the causal GGD reclaims all of them:"
    );
    println!(
        "  reclaimed = {}   residual garbage = {}   safety violations = {}",
        report.reclaimed, report.residual_garbage, report.safety_violations
    );
}
