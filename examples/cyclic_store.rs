//! A small "distributed object store" scenario: inter-site rings of objects
//! become garbage and only comprehensive collectors reclaim them. Shows the
//! comprehensiveness gap of reference listing (the paper's motivation).
//!
//! ```sh
//! cargo run --example cyclic_store
//! ```

use ggd::prelude::*;

fn run<C: Collector>(name: &str, factory: impl Fn(SiteId) -> C + 'static) {
    let scenario = workloads::ring(6);
    let mut cluster = Cluster::from_scenario(&scenario, ClusterConfig::default(), factory);
    let report = cluster.run(&scenario);
    println!(
        "{name:>12}: reclaimed {} / 6 cycle members, residual garbage {}, safety violations {}",
        report.reclaimed, report.residual_garbage, report.safety_violations
    );
}

fn main() {
    println!("== a 6-element inter-site ring is disconnected from its root ==");
    run("causal", CausalCollector::new);
    run("tracing", TracingCollector::factory(7));
    run("reflisting", RefListingCollector::new);
    println!();
    println!(
        "reference listing leaves the whole cycle in place (acyclic schemes \
         trade comprehensiveness for scalability, §3 of the paper); the causal \
         collector reclaims it without any global consensus."
    );
}
